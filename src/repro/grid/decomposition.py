"""Domain decomposition: distributing the voxel grid over ranks/devices.

The paper (Fig 1B) uses either *linear* (1D strips) or *block* (2D/3D)
decomposition; block decomposition minimizes halo surface and is the default
for both SIMCoV implementations.  Each rank owns an axis-aligned box of
voxels; neighbor ranks are those whose ghost-expanded boxes overlap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.grid.box import Box
from repro.grid.spec import GridSpec


class DecompositionKind(enum.Enum):
    """How the domain is subdivided (paper Fig 1B top vs bottom)."""

    LINEAR = "linear"
    BLOCK = "block"


def _near_square_factorization(n: int, ndim: int, shape: tuple[int, ...]) -> tuple[int, ...]:
    """Factor ``n`` ranks into a process grid as close to cubic as possible,
    weighted by the domain aspect ratio (longer axes get more cuts).

    Greedy: repeatedly assign the largest remaining prime factor to the axis
    with the largest per-rank extent.
    """
    factors = []
    m = n
    p = 2
    while p * p <= m:
        while m % p == 0:
            factors.append(p)
            m //= p
        p += 1
    if m > 1:
        factors.append(m)
    grid = [1] * ndim
    for f in sorted(factors, reverse=True):
        # Axis whose subdomain extent is currently largest, among axes
        # that can still accommodate the factor (>= 1 voxel per rank).
        candidates = [d for d in range(ndim) if grid[d] * f <= shape[d]]
        if not candidates:
            raise ValueError(
                f"cannot block-decompose shape {shape} over {n} ranks: "
                f"prime factor {f} exceeds every remaining axis"
            )
        axis = max(candidates, key=lambda d: shape[d] / grid[d])
        grid[axis] *= f
    return tuple(grid)


def _split_extent(extent: int, parts: int) -> list[tuple[int, int]]:
    """Split [0, extent) into ``parts`` contiguous ranges differing by <=1."""
    if parts > extent:
        raise ValueError(f"cannot split extent {extent} into {parts} parts")
    base = extent // parts
    rem = extent % parts
    out = []
    lo = 0
    for i in range(parts):
        hi = lo + base + (1 if i < rem else 0)
        out.append((lo, hi))
        lo = hi
    return out


@dataclass(frozen=True)
class Decomposition:
    """A partition of the grid into per-rank boxes.

    Attributes
    ----------
    spec:
        The global grid.
    proc_grid:
        Ranks per dimension, e.g. ``(4, 2)``.
    boxes:
        ``boxes[rank]`` is the owned box of ``rank``; together they tile the
        domain exactly (validated by the test suite).
    """

    spec: GridSpec
    proc_grid: tuple[int, ...]
    boxes: tuple[Box, ...] = field(init=False)

    def __post_init__(self):
        proc_grid = tuple(int(p) for p in self.proc_grid)
        if len(proc_grid) != self.spec.ndim:
            raise ValueError(
                f"proc_grid rank {len(proc_grid)} != grid ndim {self.spec.ndim}"
            )
        if any(p <= 0 for p in proc_grid):
            raise ValueError(f"proc_grid must be positive, got {proc_grid}")
        object.__setattr__(self, "proc_grid", proc_grid)
        splits = [
            _split_extent(e, p) for e, p in zip(self.spec.shape, proc_grid)
        ]
        boxes = []
        for pcoord in np.ndindex(*proc_grid):
            lo = tuple(splits[d][pcoord[d]][0] for d in range(self.spec.ndim))
            hi = tuple(splits[d][pcoord[d]][1] for d in range(self.spec.ndim))
            boxes.append(Box(lo, hi))
        object.__setattr__(self, "boxes", tuple(boxes))

    # -- constructors --------------------------------------------------------

    @classmethod
    def linear(cls, spec: GridSpec, nranks: int) -> "Decomposition":
        """1D strip decomposition along the first axis (Fig 1B bottom)."""
        grid = (nranks,) + (1,) * (spec.ndim - 1)
        return cls(spec, grid)

    @classmethod
    def blocks(cls, spec: GridSpec, nranks: int) -> "Decomposition":
        """Near-square 2D/3D block decomposition (Fig 1B top)."""
        return cls(spec, _near_square_factorization(nranks, spec.ndim, spec.shape))

    @classmethod
    def make(
        cls, spec: GridSpec, nranks: int, kind: DecompositionKind
    ) -> "Decomposition":
        if kind is DecompositionKind.LINEAR:
            return cls.linear(spec, nranks)
        return cls.blocks(spec, nranks)

    # -- queries --------------------------------------------------------------

    @property
    def nranks(self) -> int:
        return len(self.boxes)

    def rank_coords(self, rank: int) -> tuple[int, ...]:
        """Process-grid coordinates of ``rank`` (C order over proc_grid)."""
        return tuple(int(c) for c in np.unravel_index(rank, self.proc_grid))

    def owner_of(self, coords) -> np.ndarray:
        """Owning rank for each global coordinate, shape (...,)."""
        c = np.asarray(coords, dtype=np.int64)
        rank_idx = np.zeros(c.shape[:-1], dtype=np.int64)
        for d in range(self.spec.ndim):
            edges = np.array(
                [b for (_, b) in _split_extent(self.spec.shape[d], self.proc_grid[d])]
            )
            idx_d = np.searchsorted(edges, c[..., d], side="right")
            rank_idx = rank_idx * self.proc_grid[d] + idx_d
        return rank_idx

    def neighbors(self, rank: int, ghost: int = 1) -> list[int]:
        """Ranks whose owned box overlaps ``rank``'s ghost-expanded box
        (includes diagonal neighbors, which T-cell moves need)."""
        ext = self.boxes[rank].expand(ghost).clip(self.spec.domain)
        out = []
        for other in range(self.nranks):
            if other == rank:
                continue
            if not self.boxes[other].intersect(ext).is_empty:
                out.append(other)
        return out

    def neighbor_graph(self, ghost: int = 1) -> nx.Graph:
        """The rank adjacency graph (used for validation and comm modeling)."""
        g = nx.Graph()
        g.add_nodes_from(range(self.nranks))
        for r in range(self.nranks):
            for o in self.neighbors(r, ghost):
                g.add_edge(r, o)
        return g

    def halo_surface_voxels(self, rank: int, ghost: int = 1) -> int:
        """Number of ghost voxels around ``rank``'s box (communication volume
        proxy; block beats linear here, which the ablation bench shows)."""
        box = self.boxes[rank]
        ext = box.expand(ghost).clip(self.spec.domain)
        return ext.size - box.size
