"""Tile-contiguous zig-zag memory layout (paper Fig 3B).

Each tile stores its voxels contiguously; tiles are ordered along a
boustrophedon (zig-zag) path so that consecutive tiles in memory are spatial
neighbors, improving cache behaviour as kernels sweep the space.  The
simulator keeps fields in plain C-order numpy arrays for vectorization, but
the layout bijection is used by the performance model to account memory
locality, and is exposed (and property-tested) as the reference ordering a
native CUDA port would use.
"""

from __future__ import annotations

import numpy as np

from repro.grid.tiling import TileGrid


class TiledLayout:
    """Bijection between owned-region voxel coordinates and memory offsets.

    Ordering: tiles follow a boustrophedon path over the tile grid (each
    dimension's scan direction alternates with the parity of the preceding
    dimensions' indices); within a tile, voxels are C-ordered.
    """

    def __init__(self, tiles: TileGrid):
        self.tiles = tiles
        self._tile_order = self._boustrophedon_order()
        #: memory offset of the first voxel of each tile, in tile order.
        self._tile_starts = np.zeros(len(self._tile_order) + 1, dtype=np.int64)
        for i, idx in enumerate(self._tile_order):
            self._tile_starts[i + 1] = (
                self._tile_starts[i] + tiles.tile_box(idx).size
            )
        #: rank of each tile in the boustrophedon order, indexed by tile idx.
        self._tile_rank = np.empty(tiles.tiles_per_dim, dtype=np.int64)
        for i, idx in enumerate(self._tile_order):
            self._tile_rank[idx] = i

    @property
    def size(self) -> int:
        """Total voxels (== owned region size)."""
        return int(self._tile_starts[-1])

    def _boustrophedon_order(self) -> list[tuple[int, ...]]:
        """Zig-zag enumeration of tile indices.

        The scan direction of dimension ``d`` is the parity of the sum of the
        indices chosen for dimensions ``< d``; this makes every consecutive
        pair of tiles on the path spatial neighbors (Chebyshev distance 1),
        in any number of dimensions.
        """
        dims = self.tiles.tiles_per_dim
        order: list[tuple[int, ...]] = []

        def rec(prefix: tuple[int, ...], index_sum: int):
            d = len(prefix)
            if d == len(dims):
                order.append(prefix)
                return
            rng = range(dims[d])
            if index_sum % 2 == 1:
                rng = reversed(rng)
            for i in rng:
                rec(prefix + (i,), index_sum + i)

        rec((), 0)
        return order

    # -- forward ------------------------------------------------------------

    def offset_of(self, coords) -> np.ndarray:
        """Memory offsets for owned-relative voxel coordinates (..., ndim)."""
        c = np.asarray(coords, dtype=np.int64)
        tiles = self.tiles
        tile_idx = c // np.array(tiles.tile_shape, dtype=np.int64)
        within = c - tile_idx * np.array(tiles.tile_shape, dtype=np.int64)
        # Rank of the containing tile along the zig-zag path.
        rank = self._tile_rank[tuple(np.moveaxis(tile_idx, -1, 0))]
        start = self._tile_starts[rank]
        # C-order offset within the tile; edge tiles can be smaller, so the
        # within-tile extents are computed per voxel.
        ext = np.minimum(
            (tile_idx + 1) * np.array(tiles.tile_shape), np.array(tiles.owned_shape)
        ) - tile_idx * np.array(tiles.tile_shape)
        off = within[..., 0]
        for d in range(1, tiles.ndim):
            off = off * ext[..., d] + within[..., d]
        return start + off

    # -- inverse --------------------------------------------------------------

    def coords_of(self, offsets) -> np.ndarray:
        """Inverse mapping: memory offsets -> owned-relative coordinates."""
        offs = np.asarray(offsets, dtype=np.int64)
        rank = np.searchsorted(self._tile_starts, offs, side="right") - 1
        out = np.empty(offs.shape + (self.tiles.ndim,), dtype=np.int64)
        order = self._tile_order
        for r in np.unique(rank):
            sel = rank == r
            idx = order[int(r)]
            box = self.tiles.tile_box(idx)
            within = offs[sel] - self._tile_starts[r]
            shape = box.shape
            coords = np.empty((int(sel.sum()), self.tiles.ndim), dtype=np.int64)
            rem = within
            for d in range(self.tiles.ndim - 1, 0, -1):
                coords[:, d] = rem % shape[d]
                rem = rem // shape[d]
            coords[:, 0] = rem
            coords += np.array(box.lo)
            out[sel] = coords
        return out

    # -- locality metric ---------------------------------------------------------

    def mean_stride(self) -> float:
        """Mean |memory distance| between spatially adjacent voxel pairs along
        axis 0 — the locality figure the perf model feeds into its cache
        model.  Lower is better; tiled layouts beat plain C order on square
        subdomains."""
        shape = self.tiles.owned_shape
        if shape[0] < 2:
            return 0.0
        axes = [np.arange(s) for s in shape]
        mesh = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
        a = mesh[:-1].reshape(-1, len(shape))
        b = a.copy()
        b[:, 0] += 1
        return float(np.mean(np.abs(self.offset_of(a) - self.offset_of(b))))
