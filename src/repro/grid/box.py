"""Axis-aligned integer boxes (half-open intervals per dimension)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Box:
    """A half-open axis-aligned box ``[lo, hi)`` in voxel coordinates.

    Used for subdomains, halo strips and tile extents.  Immutable and
    hashable so boxes can key dictionaries (e.g. message routing tables).
    """

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self):
        if len(self.lo) != len(self.hi):
            raise ValueError(f"lo/hi rank mismatch: {self.lo} vs {self.hi}")
        object.__setattr__(self, "lo", tuple(int(x) for x in self.lo))
        object.__setattr__(self, "hi", tuple(int(x) for x in self.hi))

    # -- geometry ----------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(max(0, h - l) for l, h in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def is_empty(self) -> bool:
        return any(h <= l for l, h in zip(self.lo, self.hi))

    def contains(self, coords) -> np.ndarray:
        """Elementwise membership test for ``coords`` of shape (..., ndim)."""
        c = np.asarray(coords)
        lo = np.array(self.lo)
        hi = np.array(self.hi)
        return np.all((c >= lo) & (c < hi), axis=-1)

    def intersect(self, other: "Box") -> "Box":
        """The (possibly empty) intersection box."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        return Box(lo, tuple(max(l, h) for l, h in zip(lo, hi)))

    def expand(self, width: int) -> "Box":
        """Grow (or shrink, for negative ``width``) by ``width`` on all sides."""
        return Box(
            tuple(l - width for l in self.lo),
            tuple(h + width for h in self.hi),
        )

    def clip(self, other: "Box") -> "Box":
        """Alias for :meth:`intersect` reading better at call sites that clip
        to the global domain."""
        return self.intersect(other)

    def shift(self, offset) -> "Box":
        """Translate by an integer offset vector."""
        return Box(
            tuple(l + int(o) for l, o in zip(self.lo, offset)),
            tuple(h + int(o) for h, o in zip(self.hi, offset)),
        )

    # -- array plumbing ----------------------------------------------------

    def slices_from(self, origin) -> tuple[slice, ...]:
        """Slices selecting this box from an array whose [0,0,..] element sits
        at global coordinate ``origin``."""
        return tuple(
            slice(l - int(o), h - int(o))
            for l, h, o in zip(self.lo, self.hi, origin)
        )

    def coords(self) -> np.ndarray:
        """All voxel coordinates in the box, shape (size, ndim), C order."""
        if self.is_empty:
            return np.empty((0, self.ndim), dtype=np.int64)
        axes = [np.arange(l, h, dtype=np.int64) for l, h in zip(self.lo, self.hi)]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack([m.ravel() for m in mesh], axis=-1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box(lo={self.lo}, hi={self.hi})"
