"""Ghost-halo exchange between subdomains.

Two merge modes (paper §3.1):

- ``REPLACE`` — the owner's value is authoritative; owned boundary voxels are
  copied into every neighbor's ghost halo.  Used for epithelial state,
  concentration fields and T-cell payloads.
- ``MAX`` — all copies of a voxel (owned or ghost) are combined with
  element-wise maximum.  This is the bid-merge that lets the T-cell tiebreak
  finish in a *single* communication wave: each device writes bids into its
  own memory (including ghost targets), then one max-merge exchange makes
  every copy of every voxel equal to the global maximum bid.

A single exchange round is exact for MAX because any device that writes a
voxel and any device that reads it both hold that voxel in their (ghost-
expanded) extents, so they are direct neighbors and exchange that strip —
including the diagonal corner strips.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.grid.box import Box
from repro.grid.decomposition import Decomposition


class MergeMode(enum.Enum):
    REPLACE = "replace"
    MAX = "max"


@dataclass(frozen=True)
class PullRoute:
    """One incoming message of a rank's halo plan, in pull form.

    ``region`` is the global box the receiver reads from ``src``'s local
    array and writes (REPLACE) or max-merges (MAX) into its own.  Plain
    tuples of ints only, so plans pickle cheaply across process spawns.
    """

    src: int
    region_lo: tuple[int, ...]
    region_hi: tuple[int, ...]

    @property
    def region(self) -> Box:
        return Box(self.region_lo, self.region_hi)


@dataclass(frozen=True)
class RankPullPlan:
    """Everything one rank needs to run its side of every exchange wave
    without the :class:`HaloExchanger` (or any other rank's Python
    objects) in its address space — the serialized route table a detached
    worker process receives once at spawn.

    ``origins[r]`` is the global coordinate of rank ``r``'s padded-array
    element ``[0, 0, ...]``; combined with a route's region it yields the
    source and destination slices of the copy.
    """

    rank: int
    origins: tuple[tuple[int, ...], ...]
    replace: tuple[PullRoute, ...]
    max_merge: tuple[PullRoute, ...]

    def src_slices(self, route: PullRoute) -> tuple[slice, ...]:
        return route.region.slices_from(self.origins[route.src])

    def dst_slices(self, route: PullRoute) -> tuple[slice, ...]:
        return route.region.slices_from(self.origins[self.rank])

    @property
    def neighbor_ranks(self) -> tuple[int, ...]:
        """Every rank this plan reads from (segment-attach list)."""
        return tuple(
            sorted({r.src for r in self.replace} | {r.src for r in self.max_merge})
        )


def strip_live(route_region: Box, src_region: Box | None, dilate: int = 0) -> bool:
    """Whether a pull route can carry fresh data, given the source rank's
    published activity bounding box (None = idle rank).

    A strip is dead — and its pull skippable, bitwise invisibly — when the
    source wrote nothing inside the route's region since the destination
    last pulled it: every state kernel confines its writes to the gate's
    bounding region.  ``dilate`` widens the source region for waves whose
    writes spill past it (the intent scatter-max reaches one voxel out).
    """
    if src_region is None:
        return False
    if dilate:
        src_region = src_region.expand(dilate)
    return not route_region.intersect(src_region).is_empty


class HaloExchanger:
    """Precomputed message routes for one decomposition + ghost width.

    Parameters
    ----------
    decomp:
        The domain decomposition.
    ghost:
        Halo width in voxels (SIMCoV needs 1: nothing moves or diffuses
        farther than one voxel per step — the same invariant memory tiling
        relies on, §3.2).
    on_message:
        Optional callback ``(src_rank, dst_rank, nbytes)`` invoked for every
        point-to-point message, used by the perf model to account
        communication.
    """

    def __init__(
        self,
        decomp: Decomposition,
        ghost: int = 1,
        on_message: Callable[[int, int, int], None] | None = None,
    ):
        self.decomp = decomp
        self.ghost = int(ghost)
        self.on_message = on_message
        domain = decomp.spec.domain
        #: Per-rank memory extent: owned box expanded by the halo, clipped.
        self.extents: list[Box] = [
            b.expand(self.ghost).clip(domain) for b in decomp.boxes
        ]
        #: Local-array origins (ghost cells exist even outside the domain so
        #: that local arrays always have shape owned+2*ghost).
        self.origins: list[tuple[int, ...]] = [
            tuple(l - self.ghost for l in b.lo) for b in decomp.boxes
        ]
        # REPLACE routes: (src, dst, region) where region = dst extent ∩ src
        # box — i.e. dst's ghost voxels owned by src.
        self._replace_routes: list[tuple[int, int, Box]] = []
        # MAX routes: (src, dst, region) where region = extent ∩ extent.
        # Built from *extent* overlap, not box adjacency: when a subdomain is
        # thinner than the halo width, two ranks that are not box-neighbors
        # can both hold (and bid into) the same ghost voxel and must exchange
        # directly for one merge wave to be exact.
        self._max_routes: list[tuple[int, int, Box]] = []
        for dst in range(decomp.nranks):
            for src in range(decomp.nranks):
                if src == dst:
                    continue
                replace_region = decomp.boxes[src].intersect(self.extents[dst])
                if not replace_region.is_empty:
                    self._replace_routes.append((src, dst, replace_region))
                max_region = self.extents[src].intersect(self.extents[dst])
                if not max_region.is_empty:
                    self._max_routes.append((src, dst, max_region))

    @property
    def replace_routes(self) -> list[tuple[int, int, Box]]:
        """Public view of the REPLACE message routes ``(src, dst, region)``,
        where region = dst's ghost voxels owned by src.  SIMCoV-CPU uses the
        same geometry for its batched boundary-strip RPCs."""
        return list(self._replace_routes)

    def pull_plan(self, rank: int) -> RankPullPlan:
        """Serialize ``rank``'s side of every wave as a picklable pull plan.

        The plan carries the same REPLACE and MAX route geometry
        :meth:`exchange` executes, restricted to routes terminating at
        ``rank`` — a detached worker holding (shared-memory views of) the
        per-rank arrays can reproduce the exchange without this object.
        """
        return RankPullPlan(
            rank=rank,
            origins=tuple(self.origins),
            replace=tuple(
                PullRoute(src, region.lo, region.hi)
                for src, dst, region in self._replace_routes
                if dst == rank
            ),
            max_merge=tuple(
                PullRoute(src, region.lo, region.hi)
                for src, dst, region in self._max_routes
                if dst == rank
            ),
        )

    # -- array helpers -----------------------------------------------------

    def local_shape(self, rank: int) -> tuple[int, ...]:
        """Shape of a rank's local array (owned + 2*ghost per dim)."""
        return tuple(s + 2 * self.ghost for s in self.decomp.boxes[rank].shape)

    def owned_slices(self, rank: int) -> tuple[slice, ...]:
        """Slices selecting the owned interior of a local array."""
        return self.decomp.boxes[rank].slices_from(self.origins[rank])

    def region_slices(self, rank: int, region: Box) -> tuple[slice, ...]:
        """Slices selecting a global region from ``rank``'s local array."""
        return region.slices_from(self.origins[rank])

    def allocate(self, rank: int, dtype, fill=0) -> np.ndarray:
        """A zero/fill-initialized local array with ghost layers."""
        return np.full(self.local_shape(rank), fill, dtype=dtype)

    # -- exchanges ----------------------------------------------------------

    def exchange(
        self, arrays: list[np.ndarray], mode: MergeMode = MergeMode.REPLACE
    ) -> None:
        """Perform one halo-exchange wave in place over per-rank arrays.

        ``arrays[rank]`` must have :meth:`local_shape`.  REPLACE copies owner
        boundaries into neighbor ghosts; MAX max-merges every overlapping
        strip (all-pairs among neighbors), making all copies of each voxel
        equal to the global elementwise maximum.
        """
        if len(arrays) != self.decomp.nranks:
            raise ValueError(
                f"need {self.decomp.nranks} arrays, got {len(arrays)}"
            )
        for rank, arr in enumerate(arrays):
            if arr.shape != self.local_shape(rank):
                raise ValueError(
                    f"rank {rank}: array shape {arr.shape} != "
                    f"local shape {self.local_shape(rank)}"
                )
        if mode is MergeMode.REPLACE:
            routes = self._replace_routes
        else:
            routes = self._max_routes
        itemsize = arrays[0].dtype.itemsize
        # Snapshot the sent strips first: a real exchange sends pre-exchange
        # values; in-place sequential copying must not leak merged values.
        packets = []
        for src, dst, region in routes:
            payload = arrays[src][self.region_slices(src, region)].copy()
            packets.append((src, dst, region, payload))
            if self.on_message is not None:
                self.on_message(src, dst, payload.size * itemsize)
        for src, dst, region, payload in packets:
            view = arrays[dst][self.region_slices(dst, region)]
            if mode is MergeMode.REPLACE:
                view[...] = payload
            else:
                np.maximum(view, payload, out=view)

    def exchange_many(
        self, field_sets: dict[str, list[np.ndarray]], mode: MergeMode
    ) -> None:
        """Exchange several named fields in one wave (messages are batched in
        real implementations; accounting still sees each field's bytes)."""
        for arrays in field_sets.values():
            self.exchange(arrays, mode)

    # -- verification helpers -------------------------------------------------

    def gather_global(self, arrays: list[np.ndarray]) -> np.ndarray:
        """Assemble the global array from owned interiors (test/IO helper)."""
        out = np.zeros(self.decomp.spec.shape, dtype=arrays[0].dtype)
        for rank, arr in enumerate(arrays):
            box = self.decomp.boxes[rank]
            out[box.slices_from((0,) * box.ndim)] = arr[self.owned_slices(rank)]
        return out

    def scatter_global(self, global_array: np.ndarray) -> list[np.ndarray]:
        """Split a global array into per-rank local arrays (ghosts filled by
        one REPLACE exchange; out-of-domain ghosts zero)."""
        arrays = []
        for rank in range(self.decomp.nranks):
            arr = self.allocate(rank, global_array.dtype)
            ext = self.extents[rank]
            arr[self.region_slices(rank, ext)] = global_array[
                ext.slices_from((0,) * ext.ndim)
            ]
            arrays.append(arr)
        return arrays
