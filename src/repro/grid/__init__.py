"""Voxel-grid infrastructure shared by both SIMCoV implementations.

Provides the spatial vocabulary of the paper: the global voxel grid
(:class:`~repro.grid.spec.GridSpec`), axis-aligned boxes
(:class:`~repro.grid.box.Box`), linear / 2D / 3D block domain decomposition
(:class:`~repro.grid.decomposition.Decomposition`, Fig 1B), ghost-halo
geometry and exchange (:mod:`repro.grid.halo`, Fig 2), memory tiling with
activation tracking (:mod:`repro.grid.tiling`, §3.2 / Fig 3) and the
tile-contiguous zig-zag memory layout (:mod:`repro.grid.layout`, Fig 3B).
"""

from repro.grid.box import Box
from repro.grid.spec import GridSpec, moore_offsets, von_neumann_offsets
from repro.grid.decomposition import Decomposition, DecompositionKind
from repro.grid.halo import HaloExchanger, MergeMode
from repro.grid.tiling import TileGrid
from repro.grid.layout import TiledLayout

__all__ = [
    "Box",
    "GridSpec",
    "moore_offsets",
    "von_neumann_offsets",
    "Decomposition",
    "DecompositionKind",
    "HaloExchanger",
    "MergeMode",
    "TileGrid",
    "TiledLayout",
]
