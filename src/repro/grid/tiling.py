"""Memory tiling with activation tracking (paper §3.2, Fig 3).

SIMCoV-GPU replaces the CPU version's dynamic active-list with fixed-size
*tiles*: the per-device subdomain is carved into tiles, each flagged active
or inactive, and kernels only touch active tiles.  A periodic sweep kernel
re-derives activity; the paper proves the sweep may run as rarely as once
per ``tile_side`` steps provided (a) activating a tile also activates a
one-tile-thick buffer around it and (b) tiles containing ghost voxels stay
active — because nothing in SIMCoV moves faster than one voxel per step.
"""

from __future__ import annotations

import numpy as np

from repro.grid.box import Box


class TileGrid:
    """Tile bookkeeping for one subdomain.

    Parameters
    ----------
    owned_shape:
        Shape of the owned (interior, ghost-less) region.
    tile_shape:
        Tile extents per dimension.  The paper requires an integer number of
        tiles per dimension; we additionally allow ragged edge tiles so that
        arbitrary problem sizes work (an edge tile is simply smaller).
    ghost:
        Halo width; boundary tiles (those within ``ghost`` voxels of the
        subdomain surface) are pinned active, mirroring the paper's rule
        that tiles containing ghost voxels are always active.
    """

    def __init__(self, owned_shape, tile_shape, ghost: int = 1,
                 pin_sides=None):
        self.owned_shape = tuple(int(s) for s in owned_shape)
        self.tile_shape = tuple(int(t) for t in tile_shape)
        self.ghost = int(ghost)
        #: (ndim, 2) booleans: pin the (low, high) tile shell of each axis.
        #: Only sides facing a *neighbor* subdomain need pinning — a domain
        #: boundary has no ghost traffic.  Default: pin everything.
        if pin_sides is None:
            pin_sides = np.ones((len(self.owned_shape), 2), dtype=bool)
        self.pin_sides = np.asarray(pin_sides, dtype=bool)
        if self.pin_sides.shape != (len(self.owned_shape), 2):
            raise ValueError(
                f"pin_sides must be (ndim, 2), got {self.pin_sides.shape}"
            )
        if len(self.tile_shape) != len(self.owned_shape):
            raise ValueError("tile_shape rank must match owned_shape rank")
        if any(t <= 0 for t in self.tile_shape):
            raise ValueError(f"tile extents must be positive: {self.tile_shape}")
        if any(t > s for t, s in zip(self.tile_shape, self.owned_shape)):
            raise ValueError(
                f"tile {self.tile_shape} larger than subdomain {self.owned_shape}"
            )
        self.tiles_per_dim = tuple(
            -(-s // t) for s, t in zip(self.owned_shape, self.tile_shape)
        )
        #: Active flags, one per tile.
        self.active = np.ones(self.tiles_per_dim, dtype=bool)
        self._pin_boundary_tiles()

    # -- geometry -----------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.owned_shape)

    @property
    def num_tiles(self) -> int:
        return int(np.prod(self.tiles_per_dim))

    @property
    def num_active(self) -> int:
        return int(self.active.sum())

    def active_voxel_count(self) -> int:
        """Total voxels inside active tiles (perf-model input)."""
        vol = np.ones((), dtype=np.int64)
        for n, t, s in zip(self.tiles_per_dim, self.tile_shape, self.owned_shape):
            edges = np.arange(n, dtype=np.int64) * t
            sizes = np.minimum(edges + t, s) - edges
            vol = np.multiply.outer(vol, sizes)
        return int(vol[self.active].sum())

    def tile_box(self, tile_idx) -> Box:
        """Owned-region-relative box of one tile (edge tiles clipped)."""
        lo = tuple(i * t for i, t in zip(tile_idx, self.tile_shape))
        hi = tuple(
            min((i + 1) * t, s)
            for i, t, s in zip(tile_idx, self.tile_shape, self.owned_shape)
        )
        return Box(lo, hi)

    def tile_of_voxel(self, coords) -> np.ndarray:
        """Tile indices (..., ndim) of owned-relative voxel coordinates."""
        c = np.asarray(coords, dtype=np.int64)
        return c // np.array(self.tile_shape, dtype=np.int64)

    def active_tile_indices(self) -> list[tuple[int, ...]]:
        """Indices of active tiles, deterministic C order."""
        return [tuple(int(i) for i in idx) for idx in zip(*np.nonzero(self.active))]

    def active_tile_slices(self) -> list[tuple[slice, ...]]:
        """Owned-region slices of each active tile, for kernel iteration."""
        return [
            self.tile_box(idx).slices_from((0,) * self.ndim)
            for idx in self.active_tile_indices()
        ]

    # -- activation protocol ---------------------------------------------------

    def _boundary_mask(self) -> np.ndarray:
        """Tiles touching a *neighbor-facing* subdomain surface (they contain
        ghost-adjacent voxels and are pinned active, §3.2)."""
        mask = np.zeros(self.tiles_per_dim, dtype=bool)
        if self.ghost <= 0:
            return mask
        for d in range(self.ndim):
            sl = [slice(None)] * self.ndim
            if self.pin_sides[d, 0]:
                sl[d] = 0
                mask[tuple(sl)] = True
            if self.pin_sides[d, 1]:
                sl[d] = self.tiles_per_dim[d] - 1
                mask[tuple(sl)] = True
        return mask

    def _pin_boundary_tiles(self) -> None:
        self.active |= self._boundary_mask()

    def sweep(self, activity_mask: np.ndarray, padded: bool = False) -> int:
        """Re-derive tile activity from a per-voxel activity mask.

        A tile becomes active if any voxel in (or, for ``padded`` masks,
        within one voxel of) it is active; active tiles are then dilated by
        one tile in every (Moore) direction — the safety buffer that makes
        a sweep period of up to ``min(tile_shape)`` steps sound.  Boundary
        tiles are pinned active afterwards (they contain ghost-adjacent
        voxels, §3.2).

        Pass the block's *padded* activity mask (``padded=True``, shape
        owned + 2*ghost) in multi-block runs: ghost activity then raw-
        activates the adjacent boundary tile, so activity entering from a
        neighbor device gets the same dilation buffer as local activity.
        Returns the number of voxels scanned.
        """
        if padded:
            expect = tuple(s + 2 * self.ghost for s in self.owned_shape)
            if activity_mask.shape != expect:
                raise ValueError(
                    f"padded mask shape {activity_mask.shape} != {expect}"
                )
        elif activity_mask.shape != self.owned_shape:
            raise ValueError(
                f"mask shape {activity_mask.shape} != owned {self.owned_shape}"
            )
        if padded:
            # A tile is raw-active iff any voxel within one voxel of it is
            # active (ghost ring included, conservative at tile seams):
            # equivalently, dilate the padded mask by one voxel and reduce
            # over the tile proper.
            g = self.ghost
            crop = tuple(slice(g, g + s) for s in self.owned_shape)
            mask = _dilate(activity_mask)[crop]
        else:
            mask = activity_mask
        raw = _tile_any(mask, self.tile_shape, self.tiles_per_dim)
        self.active = _dilate(raw)
        self._pin_boundary_tiles()
        return int(np.prod(self.owned_shape))

    def activate_all(self) -> None:
        self.active[...] = True

    def voxel_mask(self) -> np.ndarray:
        """Per-voxel boolean mask of active-tile membership (owned shape)."""
        mask = self.active
        for d, t in enumerate(self.tile_shape):
            mask = mask.repeat(t, axis=d)
        return mask[tuple(slice(0, s) for s in self.owned_shape)].copy()

    def max_sweep_period(self) -> int:
        """Longest sound sweep period: the smallest tile side (§3.2)."""
        return int(min(self.tile_shape))


def _dilate(mask: np.ndarray) -> np.ndarray:
    """Moore-neighborhood binary dilation by one cell (no scipy dependency).

    Box dilation is separable: dilating by one along each axis in turn
    equals the full Moore dilation, at 2·ndim shifted ORs instead of
    3**ndim - 1."""
    out = mask.copy()
    for d in range(mask.ndim):
        if mask.shape[d] < 2:
            continue
        prev = out.copy()
        lo = [slice(None)] * mask.ndim
        hi = [slice(None)] * mask.ndim
        lo[d], hi[d] = slice(None, -1), slice(1, None)
        out[tuple(hi)] |= prev[tuple(lo)]
        out[tuple(lo)] |= prev[tuple(hi)]
    return out


def _tile_any(mask: np.ndarray, tile_shape, tiles_per_dim) -> np.ndarray:
    """Per-tile ``any`` reduction of an owned-shape mask (ragged edge tiles
    padded with False so the array reshapes into (tiles, tile, ...) blocks)."""
    full_shape = tuple(n * t for n, t in zip(tiles_per_dim, tile_shape))
    if full_shape != mask.shape:
        full = np.zeros(full_shape, dtype=bool)
        full[tuple(slice(0, s) for s in mask.shape)] = mask
        mask = full
    blocked: list[int] = []
    for n, t in zip(tiles_per_dim, tile_shape):
        blocked += [n, t]
    axes = tuple(range(1, 2 * len(tile_shape), 2))
    return mask.reshape(blocked).any(axis=axes)
