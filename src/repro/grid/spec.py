"""Global grid specification and neighborhood stencils.

SIMCoV's world is a 2D or 3D grid of 5 µm voxels (paper §2.2).  The spec
owns the global-coordinate <-> global-voxel-id mapping used to key the
counter-based RNG, which must be decomposition independent.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass

import numpy as np

from repro.grid.box import Box

#: Edge length of one voxel in microns (paper §2.1: "five microns cubed").
VOXEL_MICRONS = 5.0


@functools.lru_cache(maxsize=None)
def moore_offsets(ndim: int) -> np.ndarray:
    """All nonzero offsets with Chebyshev distance 1: 8 in 2D, 26 in 3D.

    T cells move to any adjacent voxel; this is their move/bind stencil.
    Ordered deterministically (itertools.product order) so a random index
    into the stencil means the same direction everywhere.
    """
    offs = [
        o for o in itertools.product((-1, 0, 1), repeat=ndim) if any(o)
    ]
    return np.array(offs, dtype=np.int64)


@functools.lru_cache(maxsize=None)
def von_neumann_offsets(ndim: int) -> np.ndarray:
    """Unit axis offsets: 4 in 2D, 6 in 3D.  The diffusion stencil."""
    offs = []
    for axis in range(ndim):
        for sign in (-1, 1):
            o = [0] * ndim
            o[axis] = sign
            offs.append(tuple(o))
    return np.array(offs, dtype=np.int64)


@dataclass(frozen=True)
class GridSpec:
    """The global voxel grid.

    Parameters
    ----------
    shape:
        Grid extents, ``(nx, ny)`` for 2D or ``(nx, ny, nz)`` for 3D.
    """

    shape: tuple[int, ...]

    def __post_init__(self):
        shape = tuple(int(s) for s in self.shape)
        if len(shape) not in (2, 3):
            raise ValueError(f"grid must be 2D or 3D, got shape {shape}")
        if any(s <= 0 for s in shape):
            raise ValueError(f"grid extents must be positive, got {shape}")
        object.__setattr__(self, "shape", shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def num_voxels(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def domain(self) -> Box:
        """The whole grid as a box."""
        return Box((0,) * self.ndim, self.shape)

    # -- id mapping ---------------------------------------------------------

    def ravel(self, coords) -> np.ndarray:
        """Global voxel ids (int64) for coordinates of shape (..., ndim).

        C-order raveling — a pure function of the *global* coordinate, hence
        identical on every rank/device.
        """
        c = np.asarray(coords, dtype=np.int64)
        if c.shape[-1] != self.ndim:
            raise ValueError(
                f"coords last axis {c.shape[-1]} != grid ndim {self.ndim}"
            )
        out = c[..., 0].copy()
        for d in range(1, self.ndim):
            out = out * self.shape[d] + c[..., d]
        return out

    def unravel(self, ids) -> np.ndarray:
        """Inverse of :meth:`ravel`; returns coordinates (..., ndim)."""
        ids = np.asarray(ids, dtype=np.int64)
        out = np.empty(ids.shape + (self.ndim,), dtype=np.int64)
        rem = ids
        for d in range(self.ndim - 1, 0, -1):
            out[..., d] = rem % self.shape[d]
            rem = rem // self.shape[d]
        out[..., 0] = rem
        return out

    def id_grid(self, box: Box) -> np.ndarray:
        """Global voxel ids over ``box`` as an array of ``box.shape``."""
        axes = [np.arange(l, h, dtype=np.int64) for l, h in zip(box.lo, box.hi)]
        out = axes[0].reshape((-1,) + (1,) * (self.ndim - 1)).copy()
        for d in range(1, self.ndim):
            shape = [1] * self.ndim
            shape[d] = -1
            out = out * self.shape[d] + axes[d].reshape(shape)
        return np.broadcast_to(out, box.shape).copy() if out.shape != box.shape else out

    def in_bounds(self, coords) -> np.ndarray:
        """Boolean mask for coordinates inside the grid."""
        return self.domain.contains(coords)
