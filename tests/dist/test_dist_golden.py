"""Determinism of the multi-process backend.

The non-negotiable property of ISSUE 3: :class:`DistSimCov` must
reproduce the committed golden traces **bitwise** — including the float
reductions, which the other parallel backends only match to tolerance —
for every rank count, because the coordinator reruns the reduction over
a full-domain block through the exact sequential code path.
"""

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.dist import DistSimCov

from tests.golden.test_golden_traces import (
    TRACES,
    assert_exact,
    load_trace,
    make_params,
)


@pytest.mark.parametrize("name", TRACES)
def test_dist_reproduces_golden_trace_bitwise(name, nranks):
    config, golden = load_trace(name)
    with DistSimCov(
        make_params(config), nranks=nranks, seed=config["seed"]
    ) as sim:
        sim.run(config["steps"])
        assert_exact(sim.series, golden, f"{name}/dist-{nranks}")


def test_dist_fields_match_sequential_bitwise(nranks):
    """Beyond the reduced series: every voxel field is identical."""
    config, _ = load_trace("trace_2d")
    params = make_params(config)
    ref = SequentialSimCov(params, seed=config["seed"])
    ref.run(config["steps"])
    with DistSimCov(params, nranks=nranks, seed=config["seed"]) as sim:
        sim.run(config["steps"])
        for name in (
            "epi_state", "epi_timer", "virions", "chemokine",
            "tcell", "tcell_tissue_time", "tcell_bound_time",
        ):
            np.testing.assert_array_equal(
                sim.gather_field(name),
                ref.gather_field(name),
                err_msg=f"{name} (nranks={nranks})",
            )


def test_dist_ungated_matches_gated(nranks):
    """Activity gating in the workers is bitwise invisible, as on every
    other backend."""
    config, golden = load_trace("trace_3d")
    params = make_params(config)
    with DistSimCov(
        params, nranks=nranks, seed=config["seed"], active_gating=False
    ) as sim:
        sim.run(config["steps"])
        assert_exact(sim.series, golden, f"trace_3d/dist-ungated-{nranks}")


def test_dist_linear_decomposition_matches(nranks):
    """Strip (linear) decomposition produces the same bits as block."""
    from repro.grid.decomposition import DecompositionKind

    config, golden = load_trace("trace_2d")
    with DistSimCov(
        make_params(config),
        nranks=nranks,
        seed=config["seed"],
        decomposition=DecompositionKind.LINEAR,
    ) as sim:
        sim.run(config["steps"])
        assert_exact(sim.series, golden, f"trace_2d/dist-linear-{nranks}")
