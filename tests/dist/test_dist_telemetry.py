"""Distributed telemetry: per-rank shm rings drained by the coordinator,
barrier/halo visibility, and the ISSUE 4 acceptance test — golden traces
stay bitwise identical with tracing enabled at nranks 2."""

import numpy as np

from repro.dist import DistSimCov
from repro.telemetry import RingBufferSink, Tracer

from tests.golden.test_golden_traces import (
    assert_exact,
    load_trace,
    make_params,
)

NRANKS = 2


def run_traced(config_name="trace_2d", **kwargs):
    config, golden = load_trace(config_name)
    ring = RingBufferSink()
    tracer = Tracer(sinks=[ring])
    with DistSimCov(
        make_params(config), nranks=NRANKS, seed=config["seed"],
        tracer=tracer, **kwargs,
    ) as sim:
        sim.run(config["steps"])
        dropped = sim.backend.runtime.telemetry_dropped()
        fields = {
            name: sim.gather_field(name)
            for name in ("epi_state", "virions", "chemokine", "tcell")
        }
    return config, golden, ring, dropped, fields, sim


class TestDistGoldenWithTracing:
    def test_golden_bitwise_identical_with_tracing(self):
        config, golden, ring, dropped, fields, sim = run_traced()
        assert_exact(sim.series, golden, f"trace_2d/dist-traced-{NRANKS}")
        assert dropped == [0] * NRANKS
        # And the full voxel state matches the untraced sequential run.
        from repro.core.model import SequentialSimCov

        ref = SequentialSimCov(make_params(config), seed=config["seed"])
        ref.run(config["steps"])
        for name, got in fields.items():
            np.testing.assert_array_equal(
                got, ref.gather_field(name), err_msg=name
            )


class TestDistEventStream:
    def test_per_rank_spans_and_counters(self):
        config, _, ring, dropped, _, _ = run_traced()
        steps = config["steps"]
        assert dropped == [0] * NRANKS

        # Every worker lane carries its phase spans; the coordinator
        # traces on the negative control-plane lane.
        phase = ring.spans("phase")
        worker_ranks = {e.rank for e in phase if e.rank >= 0}
        assert worker_ranks == set(range(NRANKS))
        assert {e.rank for e in phase if e.rank < 0} == {-1}
        per_rank = {
            r: [e for e in phase if e.rank == r] for r in range(NRANKS)
        }
        nphases = 12  # dist schedule length
        for r, spans in per_rank.items():
            assert len(spans) == steps * nphases, f"rank {r}"
            assert all(e.attrs.get("backend", "dist") == "dist" for e in spans)

        # Barrier waits: phase barriers + step barriers, per rank.  The
        # fused protocol has no open_exchange barrier (the step-start
        # barrier is the open wave's exit fence), so exactly these names
        # appear — "open_exchange" reappearing here would mean a fusion
        # regression.
        barriers = ring.spans("barrier")
        names = {e.name for e in barriers}
        assert names == {
            "boundary_exchange", "tiebreak_exchange",
            "concentration_exchange", "step_start", "step_end",
        }
        assert {e.rank for e in barriers} == {-1, *range(NRANKS)}

        # Halo pulls are visible as byte counters on worker lanes.
        halo = [e for e in ring.events if e.name == "halo_bytes"]
        assert halo and all(e.rank >= 0 and e.value > 0 for e in halo)

        # Liveness + shm gauges from the coordinator's drain path.
        hb = [e for e in ring.events if e.name == "heartbeat_age"]
        assert {e.rank for e in hb} == set(range(NRANKS))
        shm = [e for e in ring.events if e.name == "shm_segment_bytes"]
        roles = {e.attrs["role"] for e in shm}
        assert roles == {"control", *(f"rank{r}" for r in range(NRANKS))}

    def test_timestamps_cross_process_comparable(self):
        """Worker spans interleave on one monotonic timeline: every
        worker phase span falls inside the run's coordinator window."""
        _, _, ring, _, _, _ = run_traced()
        coord = [e for e in ring.spans() if e.rank == -1]
        lo = min(e.ts for e in coord)
        hi = max(e.ts + e.dur for e in coord)
        for ev in ring.spans("phase"):
            if ev.rank >= 0:
                assert lo - 1.0 <= ev.ts <= hi + 1.0

    def test_coordinator_metrics_not_double_counted(self):
        """Drained worker phase spans must not leak into the coordinator
        engine's own PhaseMetrics (the rank filter on the sink view)."""
        config, _, _, _, _, sim = run_traced()
        steps = config["steps"]
        # The coordinator executes only the reduce phase per step.
        assert sim.engine.metrics.calls["reduce"] == steps
        assert all(
            calls <= steps for calls in sim.engine.metrics.calls.values()
        )


class TestImbalanceObservability:
    def test_imbalance_gauges_and_monitor(self):
        """Every step publishes one imbalance_index gauge on the
        coordinator lane, and the backend's rolling monitor agrees."""
        config, _, ring, _, _, sim = run_traced()
        steps = config["steps"]
        gauges = [e for e in ring.events if e.name == "imbalance_index"]
        assert len(gauges) == steps
        assert all(e.rank == -1 and e.cat == "obs" for e in gauges)
        assert sorted(e.step for e in gauges) == list(range(steps))
        assert all(e.value >= 0.0 for e in gauges)
        monitor = sim.backend.imbalance
        summary = monitor.summary()
        assert summary["nranks"] == NRANKS
        assert summary["steps_observed"] == steps
        assert gauges[-1].value == monitor.last_index

    def test_registry_fed_by_dist_run(self):
        """The dist backend's counters/gauges land in a swapped-in
        registry: per-rank busy seconds, strip pulls, the imbalance
        gauge."""
        from repro.obs.registry import MetricsRegistry, set_registry

        config, _ = load_trace("trace_2d")
        reg = MetricsRegistry()
        prev = set_registry(reg)
        try:
            with DistSimCov(
                make_params(config), nranks=NRANKS, seed=config["seed"]
            ) as sim:
                sim.run(config["steps"])
                # Read shm-backed counters while the segments are mapped.
                pulled, skipped = sim.backend.runtime.strip_counts()
        finally:
            set_registry(prev)
        fams = reg.families()
        busy = fams["simcov_dist_rank_busy_seconds_total"].series
        assert {dict(k)["rank"] for k in busy} == {
            str(r) for r in range(NRANKS)
        }
        assert fams["simcov_dist_strips_pulled_total"].series[()].value == (
            pulled
        )
        assert fams["simcov_dist_strips_skipped_total"].series[()].value == (
            skipped
        )
        assert "simcov_dist_imbalance_index" in fams
        assert "simcov_dist_barrier_wait_seconds_total" in fams
        assert fams["simcov_dist_telemetry_dropped_events"].series[
            ()
        ].value == 0.0
