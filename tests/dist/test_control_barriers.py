"""Unit + regression tests for the fused-epoch barrier protocol.

The :class:`ShmBarrier` is a versioned arrival vector: slots only grow,
so any number of phases can share one vector per epoch with no reset
round — the property barrier fusion leans on.  These tests drive the
protocol in process (no worker spawn) and then pin the fused per-step
barrier budget on a real run: 4 phase waits + 2 step waits, down from
the seed protocol's 6 + 2.
"""

import numpy as np
import pytest

from repro.dist import DistSimCov
from repro.dist.control import (
    BarrierTimeoutError,
    ControlBlock,
    DistAborted,
    ShmBarrier,
    control_layout,
)
from repro.dist.shm import ShmSegment, make_segment_name
from repro.dist.worker import dist_schedule

PHASES = tuple(p.name for p in dist_schedule())

#: The fused protocol's per-step phase-barrier budget (boundary entry,
#: tiebreak entry, concentration entry + exit) and step-barrier budget.
FUSED_PHASE_WAITS = 4
STEP_WAITS = 2
SEED_TOTAL_WAITS = 8


@pytest.fixture
def ctrl():
    seg = ShmSegment.create(
        make_segment_name("barrier_test"), control_layout(2, len(PHASES))
    )
    try:
        yield ControlBlock(seg, 2, PHASES)
    finally:
        seg.close()


def test_multi_phase_epochs_share_one_vector(ctrl):
    """Consecutive barriers reuse the vector with no reset phase: each
    wait bumps this party's epoch, and a peer pre-advanced through many
    phases satisfies every older epoch."""
    slots = np.zeros(2, dtype=np.int64)
    bar = ShmBarrier(slots, 0, ctrl)
    slots[1] = FUSED_PHASE_WAITS  # the peer already ran its whole step
    for expected in range(1, FUSED_PHASE_WAITS + 1):
        bar.wait(timeout=1.0)
        assert bar.epoch == expected
        assert slots[0] == expected
    # Our own slot never decreased — there is no reset to race with.
    assert slots[0] == FUSED_PHASE_WAITS


def test_out_of_order_arrival_is_monotonic(ctrl):
    """A fast party at epoch e+k trivially satisfies waiters at e, and a
    late waiter is satisfied by slots that have already moved on."""
    slots = np.zeros(2, dtype=np.int64)
    fast = ShmBarrier(slots, 0, ctrl)
    late = ShmBarrier(slots, 1, ctrl)
    slots[1] = 1          # peer arrived at epoch 1 first (out of order)
    fast.wait(timeout=1.0)
    # Fast party races three epochs ahead of the shared vector's party 1.
    slots[1] = 4
    for _ in range(3):
        fast.wait(timeout=1.0)
    assert slots[0] == 4
    # The late party's single overdue wait (epoch 2) passes immediately
    # against the grown slots — epochs never need to match exactly.
    late.epoch = 1
    late.wait(timeout=1.0)
    assert slots[1] == 2


def test_timeout_attribution_names_rank_phase_step(ctrl):
    """A timeout dump must single out the stalled rank with the phase
    name and step it last reported."""
    slots = np.zeros(2, dtype=np.int64)
    bar = ShmBarrier(slots, 0, ctrl, label="phase barrier")
    stalled_phase = PHASES.index("tiebreak_exchange")
    ctrl.set_status(0, step=7, phase=stalled_phase)
    ctrl.set_status(1, step=7, phase=stalled_phase)
    ctrl.heartbeat[1] = 0.0  # rank 1 has not heartbeat since the epoch
    with pytest.raises(BarrierTimeoutError) as err:
        bar.wait(timeout=0.05)
    msg = str(err.value)
    assert "phase barrier" in msg
    assert "missing rank 1" in msg
    assert "rank 0" not in msg  # the healthy arrival is not blamed
    assert "tiebreak_exchange" in msg
    assert "step 7" in msg


def test_timeout_attribution_names_coordinator(ctrl):
    """Party ``nranks`` is the coordinator; its absence is named as such
    rather than dressed up as a worker rank."""
    slots = np.zeros(3, dtype=np.int64)  # 2 workers + coordinator
    bar = ShmBarrier(slots, 0, ctrl, label="step barrier")
    slots[1] = 1
    with pytest.raises(BarrierTimeoutError) as err:
        bar.wait(timeout=0.05)
    assert "missing party 2 (coordinator)" in str(err.value)


def test_abort_unblocks_waiter(ctrl):
    slots = np.zeros(2, dtype=np.int64)
    bar = ShmBarrier(slots, 0, ctrl)
    ctrl.abort()
    with pytest.raises(DistAborted):
        bar.wait(timeout=5.0)


def test_per_step_barrier_count_is_fused():
    """Regression gate for barrier fusion: a real run must spend exactly
    4 phase-barrier epochs and 2 step-barrier epochs per step.  The seed
    protocol spent 6 + 2; open-wave exit, the tiebreak mid-wave fence
    and the boundary-entry double all collapsed into existing barriers.
    """
    from repro.core.params import SimCovParams

    steps = 6
    params = SimCovParams.fast_test(dim=(24, 24), num_infections=1)
    with DistSimCov(params, nranks=2, seed=9) as sim:
        sim.run(steps)
        phase_slots = sim.backend.runtime.ctrl.phase_bar.copy()
        step_slots = sim.backend.runtime.ctrl.step_bar.copy()
    assert list(phase_slots) == [FUSED_PHASE_WAITS * steps] * 2
    # Coordinator slot: exactly 2 epochs per step.  Worker slots may
    # already show the *next* step's arrival (they park at step-start).
    assert step_slots[2] == STEP_WAITS * steps
    for worker_slot in step_slots[:2]:
        assert STEP_WAITS * steps <= worker_slot <= STEP_WAITS * steps + 1
    total_per_step = FUSED_PHASE_WAITS + STEP_WAITS
    assert total_per_step < SEED_TOTAL_WAITS
