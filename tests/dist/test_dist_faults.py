"""Robustness of the distributed runtime: injected faults must surface as
diagnostic errors naming the rank/phase/step — never as a silent hang —
and every failure path must release its processes and shared memory
(the repo-wide leak fixture asserts the latter after each test)."""

import pytest

from repro.core.params import SimCovParams
from repro.dist import (
    BarrierTimeoutError,
    DistSimCov,
    FaultSpec,
    WorkerFailedError,
)


def _params():
    return SimCovParams.fast_test(dim=(16, 16), num_infections=1, num_steps=10)


def test_stalled_worker_times_out_with_diagnostic():
    """A rank that stops making progress trips the coordinator's barrier
    timeout, and the error names the stalled rank, its phase, and step."""
    fault = FaultSpec(rank=1, step=3, phase="intents", mode="stall")
    with pytest.raises(BarrierTimeoutError) as excinfo:
        with DistSimCov(
            _params(), nranks=2, seed=3, barrier_timeout=1.5, fault=fault
        ) as sim:
            sim.run(10)
    message = str(excinfo.value)
    assert "rank 1" in message
    assert "intents" in message
    assert "step 3" in message


def test_killed_worker_raises_worker_failed():
    """A worker that dies hard (os._exit, no teardown) is detected by the
    coordinator's liveness poll, not by waiting out the timeout."""
    fault = FaultSpec(rank=0, step=2, phase="epithelial", mode="die")
    with pytest.raises(WorkerFailedError) as excinfo:
        with DistSimCov(
            _params(), nranks=2, seed=3, barrier_timeout=30.0, fault=fault
        ) as sim:
            sim.run(10)
    message = str(excinfo.value)
    assert "rank 0" in message
    assert "exited with code 13" in message


def test_close_is_idempotent_and_reusable_after_failure():
    fault = FaultSpec(rank=0, step=1, phase="diffuse", mode="die")
    sim = DistSimCov(
        _params(), nranks=2, seed=5, barrier_timeout=30.0, fault=fault
    )
    with pytest.raises(WorkerFailedError):
        sim.run(10)
    sim.close()
    sim.close()  # second close is a no-op
    # The machine is still usable: a fresh runtime starts cleanly.
    with DistSimCov(_params(), nranks=2, seed=5) as sim2:
        sim2.run(2)


def test_fault_spec_validates_mode():
    with pytest.raises(ValueError, match="fault mode"):
        FaultSpec(rank=0, step=0, phase="intents", mode="explode")


def test_fault_spec_validates_repeat_and_delay():
    with pytest.raises(ValueError, match="repeat"):
        FaultSpec(rank=0, step=0, phase="intents", mode="die", repeat=0)
    with pytest.raises(ValueError, match="delay"):
        FaultSpec(rank=0, step=0, phase="intents", mode="slow", delay=-1.0)


def test_erroring_worker_raises_worker_failed():
    """An exception inside a worker's phase loop flips the abort flag and
    surfaces as WorkerFailedError naming the rank — not as a timeout."""
    fault = FaultSpec(rank=1, step=2, phase="diffuse", mode="error")
    with pytest.raises(WorkerFailedError) as excinfo:
        with DistSimCov(
            _params(), nranks=2, seed=3, barrier_timeout=30.0, fault=fault
        ) as sim:
            sim.run(10)
    assert "rank 1" in str(excinfo.value)


def test_slow_rank_degrades_latency_not_correctness():
    """A slow rank delays barriers but the run completes bitwise clean
    (the resilient supervisor's 'benign fault' class)."""
    fault = FaultSpec(rank=1, step=4, phase="intents", mode="slow",
                      delay=0.01)
    with DistSimCov(_params(), nranks=2, seed=3, fault=fault) as sim:
        sim.run(8)
        slowed = [sim.series[i] for i in range(8)]
    with DistSimCov(_params(), nranks=2, seed=3) as sim:
        sim.run(8)
        clean = [sim.series[i] for i in range(8)]
    assert slowed == clean


def test_frozen_heartbeat_is_visible_but_not_fatal():
    """freeze_heartbeat stops a rank's liveness beacon; progress
    continues (heartbeats are diagnostics, the barriers are the
    synchronization), and the stale age shows up in the gauge."""
    import time

    fault = FaultSpec(rank=1, step=2, phase="intents",
                      mode="freeze_heartbeat")
    with DistSimCov(_params(), nranks=2, seed=3, fault=fault) as sim:
        sim.run(8)
        ages = sim.backend.runtime.heartbeat_ages(time.monotonic())
        assert ages[1] > ages[0]


def test_clean_shutdown_mid_run_releases_everything():
    """Closing between steps (the Ctrl-C path) must not hang or leak."""
    sim = DistSimCov(_params(), nranks=2, seed=7)
    sim.run(3)
    sim.close()
    assert all(p.exitcode == 0 for p in sim.backend.runtime._procs)
