"""Unit tests for the distributed runtime's building blocks: shared-memory
segments, the pull-plan serialization of the halo routes, shared-memory-
backed block/intent construction, worker metrics, and the spawn start
method."""

import numpy as np
import pytest

from repro.core.kernels import IntentArrays
from repro.core.params import SimCovParams
from repro.core.state import EpiState, VoxelBlock
from repro.dist import DistSimCov, dist_schedule
from repro.dist.shm import (
    ShmSegment,
    block_layout,
    layout_nbytes,
    live_segment_names,
    make_segment_name,
)
from repro.engine.phases import validate_schedule
from repro.grid.decomposition import Decomposition, DecompositionKind
from repro.grid.halo import HaloExchanger
from repro.grid.spec import GridSpec


class TestShmSegment:
    LAYOUT = [
        ("a", (4, 4), np.dtype(np.int8)),
        ("b", (3,), np.dtype(np.float64)),
        ("c", (2, 2), np.dtype(np.uint64)),
    ]

    def test_create_attach_roundtrip(self):
        name = make_segment_name("t_roundtrip")
        seg = ShmSegment.create(name, self.LAYOUT)
        try:
            seg.arrays["a"][1, 2] = 7
            seg.arrays["b"][:] = [1.5, 2.5, 3.5]
            other = ShmSegment.attach(name, self.LAYOUT)
            assert other.arrays["a"][1, 2] == 7
            np.testing.assert_array_equal(
                other.arrays["b"], [1.5, 2.5, 3.5]
            )
            # Writes propagate the other way too (it is the same memory).
            other.arrays["c"][0, 0] = 9
            assert seg.arrays["c"][0, 0] == 9
            other.close()
        finally:
            seg.close()
        assert name not in live_segment_names()

    def test_views_are_aligned_and_zeroed(self):
        name = make_segment_name("t_zeroed")
        seg = ShmSegment.create(name, self.LAYOUT)
        try:
            for arr in seg.arrays.values():
                assert arr.ctypes.data % 16 == 0
                assert not arr.any()
        finally:
            seg.close()

    def test_close_idempotent(self):
        seg = ShmSegment.create(make_segment_name("t_idem"), self.LAYOUT)
        seg.close()
        seg.close()

    def test_layout_nbytes_covers_alignment(self):
        assert layout_nbytes(self.LAYOUT) >= 16 + 32 + 32


class TestBlockFromArrays:
    def test_shared_block_matches_private_block(self):
        spec = GridSpec((8, 6))
        decomp = Decomposition.make(spec, 2, DecompositionKind.BLOCK)
        box = decomp.boxes[1]
        name = make_segment_name("t_block")
        shape = tuple(s + 2 for s in box.shape)
        seg = ShmSegment.create(name, block_layout(shape))
        try:
            shared = VoxelBlock.from_arrays(spec, box, seg.arrays, fresh=True)
            private = VoxelBlock(spec, box)
            np.testing.assert_array_equal(shared.gid, private.gid)
            np.testing.assert_array_equal(shared.in_domain, private.in_domain)
            np.testing.assert_array_equal(shared.epi_state, private.epi_state)
            assert (shared.epi_state[shared.in_domain] == EpiState.HEALTHY).all()
        finally:
            seg.close()

    def test_shape_mismatch_rejected(self):
        spec = GridSpec((8, 6))
        decomp = Decomposition.make(spec, 2, DecompositionKind.BLOCK)
        name = make_segment_name("t_badshape")
        seg = ShmSegment.create(name, block_layout((5, 5)))
        try:
            with pytest.raises(ValueError):
                VoxelBlock.from_arrays(spec, decomp.boxes[0], seg.arrays)
        finally:
            seg.close()

    def test_intents_from_arrays_sentinels(self):
        name = make_segment_name("t_intent")
        seg = ShmSegment.create(name, block_layout((4, 4)))
        try:
            arrays = {
                f: seg.arrays[f"intent_{f}"] for f in IntentArrays.FIELD_DTYPES
            }
            intents = IntentArrays.from_arrays(arrays, fresh=True)
            assert (intents.move_dir == -1).all()
            assert (intents.bind_dir == -1).all()
            assert not intents.bid_self.any()
        finally:
            seg.close()


class TestPullPlan:
    @pytest.mark.parametrize("plan_ranks", [2, 4])
    @pytest.mark.parametrize("dim", [(12, 10), (6, 6, 6)])
    def test_plan_covers_exchanger_routes(self, dim, plan_ranks):
        """The serialized pull plan is exactly the exchanger's route table
        restricted to one destination rank."""
        spec = GridSpec(dim)
        decomp = Decomposition.make(spec, plan_ranks, DecompositionKind.BLOCK)
        ex = HaloExchanger(decomp)
        for rank in range(plan_ranks):
            plan = ex.pull_plan(rank)
            assert plan.rank == rank
            expected = {
                (src, region.lo, region.hi)
                for src, dst, region in ex.replace_routes
                if dst == rank
            }
            got = {(r.src, r.region_lo, r.region_hi) for r in plan.replace}
            assert got == expected
            for route in plan.replace:
                src_sl = plan.src_slices(route)
                dst_sl = plan.dst_slices(route)
                assert src_sl == ex.region_slices(route.src, route.region)
                assert dst_sl == ex.region_slices(rank, route.region)

    def test_plan_pickles(self):
        import pickle

        spec = GridSpec((8, 8))
        decomp = Decomposition.make(spec, 4, DecompositionKind.BLOCK)
        plan = HaloExchanger(decomp).pull_plan(2)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestSchedule:
    def test_dist_schedule_is_valid(self):
        validate_schedule(dist_schedule())

    def test_no_tile_sweep(self):
        assert "tile_sweep" not in [p.name for p in dist_schedule()]


class TestDriverSurface:
    def test_worker_metrics_aggregate(self):
        params = SimCovParams.fast_test(
            dim=(16, 16), num_infections=1, num_steps=6
        )
        with DistSimCov(params, nranks=2, seed=1) as sim:
            sim.run(6)
            merged = sim.phase_metrics
            # Each of the 2 ranks ran (or consciously skipped) every
            # phase on every step.
            for phase in dist_schedule():
                total = merged.calls.get(phase.name, 0) + merged.skips.get(
                    phase.name, 0
                )
                assert total == 2 * 6, phase.name
            assert merged.total_seconds() > 0.0
            # Per-step records carry per-rank active counts.
            assert len(sim.step_work[0]["active_per_rank"]) == 2

    def test_step_by_step_matches_run(self):
        params = SimCovParams.fast_test(
            dim=(16, 16), num_infections=1, num_steps=5
        )
        from repro.core.model import SequentialSimCov

        ref = SequentialSimCov(params, seed=2)
        with DistSimCov(params, nranks=2, seed=2) as sim:
            for _ in range(5):
                assert sim.step() == ref.step()


@pytest.mark.slow
def test_spawn_start_method():
    """Worker specs are picklable: the runtime works under spawn, where
    children re-import everything instead of inheriting it."""
    params = SimCovParams.fast_test(dim=(12, 12), num_infections=1, num_steps=4)
    from repro.core.model import SequentialSimCov

    ref = SequentialSimCov(params, seed=11)
    ref.run(4)
    with DistSimCov(params, nranks=2, seed=11, start_method="spawn") as sim:
        sim.run(4)
        assert [s.virions_total for s in sim.series._stats] == [
            s.virions_total for s in ref.series._stats
        ]
