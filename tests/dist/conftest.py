"""Fixtures for the distributed-runtime tests.

``nranks`` parametrizes over worker counts; the CI ``dist`` job pins a
single count per matrix entry via ``REPRO_DIST_NRANKS`` (comma-separated
values are accepted).
"""

import os


def pytest_generate_tests(metafunc):
    if "nranks" in metafunc.fixturenames:
        env = os.environ.get("REPRO_DIST_NRANKS")
        values = [int(v) for v in env.split(",")] if env else [1, 2, 4]
        metafunc.parametrize("nranks", values)
