"""Checkpoint/restore through the distributed backend.

Mirrors the gated-checkpoint exactness test: a checkpoint written by the
coordinator (rank 0's process) from the shared-memory blocks must resume
bitwise identically — into another distributed run, or into the
sequential reference — because restore writes straight through the
coordinator's shared-memory views and the workers' next ``open_exchange``
refreshes every ghost."""

import numpy as np

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.dist import DistSimCov
from repro.io.checkpoint import CHECKPOINT_FIELDS, load_checkpoint, save_checkpoint

TOTAL = 30
SAVE_AT = 13  # deliberately mid-run, not on any period boundary


def _setup(tmp_path):
    params = SimCovParams.fast_test(
        dim=(24, 24), num_infections=2, num_steps=TOTAL
    )
    control = SequentialSimCov(params, seed=77)
    control.run(TOTAL)
    path = str(tmp_path / "dist.npz")
    with DistSimCov(params, nranks=2, seed=77) as sim:
        sim.run(SAVE_AT)
        save_checkpoint(path, sim)
    return params, control, path


def test_dist_checkpoint_resumes_distributed(tmp_path):
    _, control, path = _setup(tmp_path)
    resumed = load_checkpoint(
        path,
        make_sim=lambda p, s, g: DistSimCov(p, nranks=4, seed=s, seed_gids=g),
    )
    try:
        assert resumed.step_num == SAVE_AT
        last = None
        for _ in range(TOTAL - SAVE_AT):
            last = resumed.step()
        assert last == control.series[TOTAL - 1]
        for name in CHECKPOINT_FIELDS:
            np.testing.assert_array_equal(
                resumed.gather_field(name),
                control.gather_field(name),
                err_msg=name,
            )
    finally:
        resumed.close()


def test_dist_checkpoint_resumes_sequentially(tmp_path):
    _, control, path = _setup(tmp_path)
    resumed = load_checkpoint(path)
    for _ in range(TOTAL - SAVE_AT):
        last = resumed.step()
    assert last == control.series[TOTAL - 1]
    np.testing.assert_array_equal(
        resumed.block.epi_state, control.block.epi_state
    )


def test_sequential_checkpoint_resumes_distributed(tmp_path):
    """The other direction: a reference checkpoint resumes on workers."""
    params = SimCovParams.fast_test(
        dim=(24, 24), num_infections=2, num_steps=TOTAL
    )
    control = SequentialSimCov(params, seed=77)
    control.run(SAVE_AT)
    path = str(tmp_path / "seq.npz")
    save_checkpoint(path, control)
    control.run(TOTAL - SAVE_AT)

    resumed = load_checkpoint(
        path,
        make_sim=lambda p, s, g: DistSimCov(p, nranks=2, seed=s, seed_gids=g),
    )
    try:
        for _ in range(TOTAL - SAVE_AT):
            last = resumed.step()
        assert last == control.series[TOTAL - 1]
        for name in ("epi_state", "tcell", "virions", "epi_timer"):
            np.testing.assert_array_equal(
                resumed.gather_field(name),
                control.gather_field(name),
                err_msg=name,
            )
    finally:
        resumed.close()
