"""Fast-tier unit tests for :meth:`HaloExchanger.pull_plan`.

These exercise the pull-route geometry *in process* — no worker spawn,
no shared memory — by replaying each rank's serialized plan against
plain numpy arrays and checking it reproduces the reference
:meth:`HaloExchanger.exchange` results exactly.  This is the route
table every dist worker runs, so a geometry bug here is a dist bug.
"""

import numpy as np
import pytest

from repro.grid.box import Box
from repro.grid.decomposition import Decomposition, DecompositionKind
from repro.grid.halo import HaloExchanger, MergeMode, strip_live
from repro.grid.spec import GridSpec


def _exchanger(shape, nranks, kind=DecompositionKind.BLOCK):
    spec = GridSpec(shape)
    decomp = Decomposition.make(spec, nranks, kind)
    return HaloExchanger(decomp, ghost=1)


def _random_arrays(ex, rng, dtype=np.float64):
    return [
        rng.uniform(1.0, 9.0, size=ex.local_shape(r)).astype(dtype)
        for r in range(ex.decomp.nranks)
    ]


def _replay_replace(ex, arrays):
    """Run every rank's pull plan (REPLACE) over ``arrays`` in place."""
    for rank in range(ex.decomp.nranks):
        plan = ex.pull_plan(rank)
        for route in plan.replace:
            arrays[rank][plan.dst_slices(route)] = arrays[route.src][
                plan.src_slices(route)
            ]


def _replay_max(ex, arrays):
    """Run every rank's pull plan (MAX) with pre-exchange snapshots."""
    snaps = []
    for rank in range(ex.decomp.nranks):
        plan = ex.pull_plan(rank)
        for route in plan.max_merge:
            snaps.append(
                (rank, plan.dst_slices(route),
                 arrays[route.src][plan.src_slices(route)].copy())
            )
    for rank, dsl, payload in snaps:
        view = arrays[rank][dsl]
        np.maximum(view, payload, out=view)


CASES = [
    ((24, 18), 2, DecompositionKind.BLOCK),
    ((24, 18), 4, DecompositionKind.BLOCK),
    ((24, 18), 4, DecompositionKind.LINEAR),
    ((10, 12, 8), 4, DecompositionKind.BLOCK),
    # Slabs thinner than the halo width: MAX routes reach past box
    # neighbors (extent-overlap geometry).
    ((5, 6), 5, DecompositionKind.LINEAR),
]


@pytest.mark.parametrize("shape,ranks,kind", CASES)
def test_pull_plan_replace_matches_exchange(shape, ranks, kind):
    ex = _exchanger(shape, ranks, kind)
    rng = np.random.default_rng(7)
    ref = _random_arrays(ex, rng)
    got = [a.copy() for a in ref]
    ex.exchange(ref, MergeMode.REPLACE)
    _replay_replace(ex, got)
    for r, (a, b) in enumerate(zip(got, ref)):
        np.testing.assert_array_equal(a, b, err_msg=f"rank {r}")


@pytest.mark.parametrize("shape,ranks,kind", CASES)
def test_pull_plan_max_matches_exchange(shape, ranks, kind):
    ex = _exchanger(shape, ranks, kind)
    rng = np.random.default_rng(11)
    ref = [
        rng.integers(0, 50, size=ex.local_shape(r)).astype(np.uint64)
        for r in range(ex.decomp.nranks)
    ]
    got = [a.copy() for a in ref]
    ex.exchange(ref, MergeMode.MAX)
    _replay_max(ex, got)
    for r, (a, b) in enumerate(zip(got, ref)):
        np.testing.assert_array_equal(a, b, err_msg=f"rank {r}")


@pytest.mark.parametrize("shape,ranks,kind", CASES)
def test_pull_plan_route_geometry(shape, ranks, kind):
    """Replace routes live in the receiver's ghost ring and inside the
    source's owned box; neighbor_ranks is exactly the set of sources."""
    ex = _exchanger(shape, ranks, kind)
    for rank in range(ex.decomp.nranks):
        plan = ex.pull_plan(rank)
        own = ex.decomp.boxes[rank]
        srcs = set()
        for route in plan.replace:
            srcs.add(route.src)
            region = route.region
            assert not region.is_empty
            # Inside the source's owned cells...
            assert region.intersect(ex.decomp.boxes[route.src]) == region
            # ...and fully outside the receiver's own box (ghost ring).
            assert region.intersect(own).is_empty
        for route in plan.max_merge:
            srcs.add(route.src)
        assert plan.neighbor_ranks == tuple(sorted(srcs))
        assert rank not in srcs


def test_strip_live_geometry():
    route = Box((4, 0), (6, 8))
    assert not strip_live(route, None)                 # idle source
    assert strip_live(route, Box((0, 0), (10, 10)))    # covering
    assert not strip_live(route, Box((6, 0), (9, 8)))  # abutting, disjoint
    # One-voxel dilation (the intent scatter reach) flips it live.
    assert strip_live(route, Box((6, 0), (9, 8)), dilate=1)
    assert not strip_live(route, Box((7, 0), (9, 8)), dilate=1)
