"""Recovery matrix for the supervised distributed runtime.

The headline property of the resilience layer: a run that loses a worker
mid-flight — to a hard kill, an exception, or a stall — recovers from
its last shadow checkpoint and finishes with per-step statistics
**bitwise identical** to a fault-free run, whether it restarts at the
same rank count or shrinks onto fewer ranks.  The repo-wide shm-leak
fixture additionally asserts every recovery tears down its wrecked
runtime completely.

These tests pick their own rank counts (``ranks`` parameter), unlike the
rest of tests/dist whose ``nranks`` fixture the CI matrix pins via
``REPRO_DIST_NRANKS``.
"""

import json

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.dist import (
    FaultSpec,
    ResilientDistSimCov,
    RestartPolicy,
    RestartsExhaustedError,
)

STEPS = 12
FAULT_STEP = 7


def _params(dim=(16, 16)):
    return SimCovParams.fast_test(
        dim=dim, num_infections=1, num_steps=STEPS
    )


def _reference_series(params, seed):
    ref = SequentialSimCov(params, seed=seed)
    ref.run(STEPS)
    return ref


def assert_series_bitwise(series, ref, label):
    __tracebackhide__ = True
    assert len(series) == len(ref.series), label
    for i in range(len(series)):
        assert series[i] == ref.series[i], f"{label}: step {i}"


MATRIX = [
    ("die", "restart", 2),
    ("die", "shrink", 2),
    ("error", "restart", 2),
    ("error", "shrink", 2),
    ("stall", "restart", 2),
    ("stall", "shrink", 2),
    ("die", "restart", 4),
    ("die", "shrink", 4),
]


@pytest.mark.parametrize("mode,on_failure,ranks", MATRIX)
def test_recovery_is_bitwise_exact(mode, on_failure, ranks):
    """Every fault kind x policy x rank count recovers to the exact
    fault-free time series (golden-trace guarantee across restarts)."""
    params = _params()
    ref = _reference_series(params, seed=3)
    fault = FaultSpec(rank=1, step=FAULT_STEP, phase="intents", mode=mode)
    # Stalls surface as barrier timeouts; keep that wait short.
    timeout = 1.0 if mode == "stall" else 30.0
    with ResilientDistSimCov(
        params,
        nranks=ranks,
        seed=3,
        fault=fault,
        barrier_timeout=timeout,
        checkpoint_every=5,
        policy=RestartPolicy(max_restarts=2, on_failure=on_failure),
    ) as sim:
        sim.run(STEPS)
        label = f"{mode}/{on_failure}/{ranks}"
        assert_series_bitwise(sim.series, ref, label)
        assert sim.restarts == 1
        assert sim.nranks == (ranks - 1 if on_failure == "shrink" else ranks)
        incident = sim.incidents[0]
        assert incident.step == FAULT_STEP
        assert incident.restored_step == 5
        assert incident.steps_replayed == FAULT_STEP - 5
        assert incident.nranks_before == ranks


def test_recovered_fields_match_sequential_bitwise():
    """Beyond the reduced series: every voxel field after a recovered run
    is identical to the fault-free sequential run's."""
    params = _params()
    ref = _reference_series(params, seed=3)
    fault = FaultSpec(rank=0, step=FAULT_STEP, phase="epithelial", mode="die")
    with ResilientDistSimCov(
        params, nranks=2, seed=3, fault=fault, checkpoint_every=4
    ) as sim:
        sim.run(STEPS)
        assert sim.restarts == 1
        for name in ("epi_state", "epi_timer", "virions", "chemokine",
                     "tcell"):
            np.testing.assert_array_equal(
                sim.gather_field(name),
                ref.gather_field(name),
                err_msg=name,
            )


def test_recovery_before_first_periodic_checkpoint():
    """A failure before step ``checkpoint_every`` rolls back to the
    seeded step-0 snapshot, not to garbage."""
    params = _params()
    ref = _reference_series(params, seed=5)
    fault = FaultSpec(rank=1, step=2, phase="diffuse", mode="die")
    with ResilientDistSimCov(
        params, nranks=2, seed=5, fault=fault, checkpoint_every=50
    ) as sim:
        sim.run(STEPS)
        assert sim.incidents[0].restored_step == 0
        assert sim.incidents[0].steps_replayed == 2
        assert_series_bitwise(sim.series, ref, "step0-rollback")


def test_repeating_fault_restarts_twice():
    """``repeat=2`` re-injects the fault into the respawned runtime; the
    supervisor rides through both incidents."""
    params = _params()
    ref = _reference_series(params, seed=3)
    fault = FaultSpec(
        rank=1, step=FAULT_STEP, phase="intents", mode="die", repeat=2
    )
    with ResilientDistSimCov(
        params, nranks=2, seed=3, fault=fault, checkpoint_every=5,
        policy=RestartPolicy(max_restarts=3),
    ) as sim:
        sim.run(STEPS)
        assert sim.restarts == 2
        assert [i.index for i in sim.incidents] == [1, 2]
        assert_series_bitwise(sim.series, ref, "repeat=2")


def test_restart_budget_exhausted_raises_with_incident_log(tmp_path):
    """A fault that outlives the budget surfaces RestartsExhaustedError
    carrying (and formatting) the full incident history — and the shm
    segments of every incarnation are still released."""
    params = _params()
    fault = FaultSpec(
        rank=1, step=3, phase="intents", mode="die", repeat=10
    )
    sim = ResilientDistSimCov(
        params, nranks=2, seed=3, fault=fault, checkpoint_every=2,
        policy=RestartPolicy(max_restarts=2),
    )
    try:
        with pytest.raises(RestartsExhaustedError) as excinfo:
            sim.run(STEPS)
    finally:
        sim.close()
    err = excinfo.value
    assert len(err.incidents) == 2
    assert "giving up after 2 restarts" in str(err)
    assert "incident 1" in str(err)
    assert "incident 2" in str(err)
    # The incident log round-trips to JSONL for CI artifacts.
    log = tmp_path / "incidents.jsonl"
    sim.write_incident_log(str(log))
    rows = [json.loads(line) for line in log.read_text().splitlines()]
    assert [r["index"] for r in rows] == [1, 2]
    assert all(r["error_type"] == "WorkerFailedError" for r in rows)


def test_shrink_stops_at_min_ranks_and_drops_the_fault():
    """Shrinking to one rank keeps working (the dist runtime degenerates
    to a supervised single worker), and a fault pinned to a rank that no
    longer exists cannot re-fire."""
    params = _params()
    ref = _reference_series(params, seed=3)
    fault = FaultSpec(
        rank=1, step=FAULT_STEP, phase="intents", mode="die", repeat=5
    )
    with ResilientDistSimCov(
        params, nranks=2, seed=3, fault=fault, checkpoint_every=5,
        policy=RestartPolicy(max_restarts=3, on_failure="shrink"),
    ) as sim:
        sim.run(STEPS)
        # rank 1 died once; the shrunken 1-rank run has no rank 1.
        assert sim.restarts == 1
        assert sim.nranks == 1
        assert_series_bitwise(sim.series, ref, "shrink-to-1")


def test_benign_faults_complete_without_recovery():
    """slow and freeze_heartbeat degrade observability/latency but not
    correctness: no restart, bitwise-exact output."""
    params = _params()
    ref = _reference_series(params, seed=3)
    for mode in ("slow", "freeze_heartbeat"):
        fault = FaultSpec(
            rank=1, step=FAULT_STEP, phase="intents", mode=mode, delay=0.01
        )
        with ResilientDistSimCov(
            params, nranks=2, seed=3, fault=fault, checkpoint_every=5
        ) as sim:
            sim.run(STEPS)
            assert sim.restarts == 0, mode
            assert_series_bitwise(sim.series, ref, mode)


def test_on_disk_checkpoints_written_atomically_and_rotated(tmp_path):
    """--checkpoint-dir mirrors every shadow snapshot to a rotated,
    loadable on-disk checkpoint; no tmp files survive."""
    from repro.io.checkpoint import load_checkpoint

    params = _params()
    ckdir = tmp_path / "ckpts"
    with ResilientDistSimCov(
        params, nranks=2, seed=3,
        checkpoint_every=2, checkpoint_dir=str(ckdir), keep_checkpoints=2,
    ) as sim:
        sim.run(8)
    names = sorted(p.name for p in ckdir.iterdir())
    assert names == ["ckpt_step00000006.npz", "ckpt_step00000008.npz"]
    # The newest checkpoint resumes bitwise (sequential, per ISSUE 2).
    resumed = load_checkpoint(str(ckdir / "ckpt_step00000008.npz"))
    assert resumed.step_num == 8
    ref = _reference_series(params, seed=3)
    for _ in range(STEPS - 8):
        last = resumed.step()
    assert last == ref.series[STEPS - 1]


def test_recovery_telemetry_reaches_trace_report():
    """Counters and the recovery span land on the coordinator lane with
    cat="resilience", and trace report renders the incident table."""
    from repro.telemetry import COUNTER, RingBufferSink, Tracer
    from repro.telemetry.report import format_report, summarize

    params = _params()
    ring = RingBufferSink()
    tracer = Tracer(backend="dist", sinks=[ring])
    fault = FaultSpec(rank=1, step=FAULT_STEP, phase="intents", mode="die")
    with ResilientDistSimCov(
        params, nranks=2, seed=3, fault=fault, checkpoint_every=5,
        tracer=tracer,
    ) as sim:
        sim.run(STEPS)
        assert sim.restarts == 1
    tracer.close()
    events = list(ring.events)
    restarts = [
        e for e in events
        if e.kind == COUNTER and e.name == "restarts"
        and e.cat == "resilience"
    ]
    assert len(restarts) == 1
    recoveries = [
        e for e in events if e.name == "recovery" and e.cat == "resilience"
    ]
    assert len(recoveries) == 1
    span = recoveries[0]
    assert span.attrs["error"] == "WorkerFailedError"
    assert span.attrs["restored_step"] == 5
    assert span.attrs["steps_replayed"] == 2

    summary = summarize(events)
    res = summary["resilience"]
    assert res["restarts"] == 1
    assert res["steps_replayed"] == 2
    assert res["checkpoints"] >= 2  # step 0 + periodic snapshots
    assert len(res["incidents"]) == 1
    text = format_report(summary)
    assert "resilience: 1 restart" in text
    assert "incident 1: WorkerFailedError" in text


def test_policy_validation():
    with pytest.raises(ValueError, match="on_failure"):
        RestartPolicy(on_failure="panic")
    with pytest.raises(ValueError, match="max_restarts"):
        RestartPolicy(max_restarts=-1)
    with pytest.raises(ValueError, match="min_ranks"):
        RestartPolicy(min_ranks=0)
    assert RestartPolicy(backoff=0.5).backoff_seconds(3) == 2.0
    assert RestartPolicy().backoff_seconds(3) == 0.0
