"""Tests for the batched ensemble backend (N sims as one program)."""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.model import SequentialSimCov
from repro.core.params import ParamsStack, SimCovParams
from repro.engine.ensemble import (
    EnsembleSimCov,
    expand_sweep,
)
from repro.rng.streams import EnsembleRNG, VoxelRNG

STATE_FIELDS = (
    "epi_state", "epi_timer", "virions", "chemokine",
    "tcell", "tcell_tissue_time", "tcell_bound_time",
)
SERIES_FIELDS = (
    "healthy", "incubating", "expressing", "apoptotic", "dead",
    "tcells_tissue", "virions_total", "chemokine_total",
    "tcells_vasculature", "extravasations", "binds", "moves", "infected",
)


def _params(dim=(16, 16), foi=2, steps=60):
    return SimCovParams.fast_test(
        dim=dim, num_infections=foi, num_steps=steps,
    )


def _assert_member_matches_solo(ens, b, solo):
    for f in SERIES_FIELDS:
        np.testing.assert_array_equal(
            ens.member_series[b].field(f), solo.series.field(f),
            err_msg=f"series field {f}, member {b}",
        )
    for f in STATE_FIELDS:
        np.testing.assert_array_equal(
            ens.gather_field(f, member=b), solo.gather_field(f),
            err_msg=f"state field {f}, member {b}",
        )


class TestBitwiseEquivalence:
    def test_uniform_ensemble_matches_solo_runs(self):
        p = _params()
        seeds = [3, 11, 42]
        ens = EnsembleSimCov(p, seeds=seeds)
        ens.run(60)
        for b, seed in enumerate(seeds):
            solo = SequentialSimCov(p, seed=seed)
            solo.run(60)
            _assert_member_matches_solo(ens, b, solo)

    def test_sweep_ensemble_matches_solo_runs(self):
        base = _params()
        members = expand_sweep(base, "num_infections", [1, 2, 4])
        seeds = [7, 7, 7]
        ens = EnsembleSimCov(members, seeds=seeds)
        ens.run(60)
        for b, p in enumerate(members):
            solo = SequentialSimCov(p, seed=seeds[b])
            solo.run(60)
            _assert_member_matches_solo(ens, b, solo)

    def test_members_with_different_seeds_diverge(self):
        p = _params()
        ens = EnsembleSimCov(p, seeds=[0, 1])
        ens.run(60)
        assert not np.array_equal(
            ens.gather_field("virions", member=0),
            ens.gather_field("virions", member=1),
        )

    def test_gating_disabled_still_bitwise(self):
        p = _params(steps=40)
        ens = EnsembleSimCov(p, seeds=[5], active_gating=False)
        ens.run(40)
        solo = SequentialSimCov(p, seed=5)
        solo.run(40)
        _assert_member_matches_solo(ens, 0, solo)


class TestConstruction:
    def test_seed_count_must_match_members(self):
        with pytest.raises(ValueError, match="seeds"):
            EnsembleSimCov([_params(), _params()], seeds=[1, 2, 3])

    def test_members_must_share_dim(self):
        with pytest.raises(ValueError, match="dim"):
            EnsembleSimCov(
                [_params(dim=(16, 16)), _params(dim=(20, 20))], seeds=[0, 1]
            )

    def test_default_seeds_are_base_plus_arange(self):
        ens = EnsembleSimCov(_params(), batch=3, base_seed=10)
        assert list(ens.rng.seeds) == [10, 11, 12]

    def test_batch_property(self):
        ens = EnsembleSimCov(_params(), batch=4)
        assert ens.batch == 4
        assert ens.backend.batch == 4

    def test_schedule_matches_sequential_phases(self):
        ens = EnsembleSimCov(_params(), batch=2)
        solo = SequentialSimCov(_params(), seed=0)
        assert [ph.name for ph in ens.backend.schedule()] == [
            ph.name for ph in solo.backend.schedule()
        ]


class TestMemberSeries:
    @pytest.fixture(scope="class")
    def run(self):
        p = _params(steps=40)
        ens = EnsembleSimCov(p, seeds=[3, 4])
        ens.run(40)
        solo = SequentialSimCov(p, seed=3)
        solo.run(40)
        return ens, solo

    def test_len_and_getitem(self, run):
        ens, solo = run
        ms = ens.member_series[0]
        assert len(ms) == len(solo.series) == 40
        for i in (0, 17, 39):
            assert ms[i] == solo.series[i]

    def test_steps_and_peak(self, run):
        ens, solo = run
        ms = ens.member_series[0]
        np.testing.assert_array_equal(ms.steps(), solo.series.steps())
        assert ms.peak("infected") == solo.series.peak("infected")

    def test_to_rows(self, run):
        ens, solo = run
        assert ens.member_series[0].to_rows() == solo.series.to_rows()

    def test_unknown_field_raises(self, run):
        ens, _ = run
        with pytest.raises(AttributeError, match="bogus"):
            ens.member_series[0].field("bogus")

    def test_engine_series_is_member_zero(self, run):
        ens, solo = run
        assert len(ens.series) == 40
        assert ens.series[39] == solo.series[39]

    def test_truncate_drops_tail_for_all_members(self):
        p = _params(steps=20)
        ens = EnsembleSimCov(p, seeds=[0, 1])
        ens.run(20)
        ens.engine.log.truncate(5)
        assert len(ens.member_series[0]) == 5
        assert len(ens.member_series[1]) == 5


class TestEnsembleGate:
    def test_union_region_covers_every_member_mask(self):
        p = _params(steps=40)
        ens = EnsembleSimCov(p, seeds=[0, 1, 2])
        ens.run(40)
        region = ens.gate.region()
        assert region is not None
        assert region[0] == slice(0, 3)
        g = ens.block.ghost
        for b in range(3):
            mask = ens.gate.member_mask(b)
            idx = np.nonzero(mask)
            for axis, coords in enumerate(idx):
                if coords.size == 0:
                    continue
                lo = region[1 + axis].start - g
                hi = region[1 + axis].stop - g
                assert coords.min() >= lo and coords.max() < hi

    def test_member_counts_sum_to_count(self):
        ens = EnsembleSimCov(_params(steps=40), seeds=[0, 1])
        ens.run(40)
        assert ens.gate.count == int(ens.gate.member_counts.sum())

    def test_sweep_period_validated(self):
        with pytest.raises(ValueError, match="sweep_period"):
            EnsembleSimCov(_params(), batch=2, sweep_period=99)

    def test_step_record_reports_batch(self):
        ens = EnsembleSimCov(_params(steps=5), seeds=[0, 1])
        ens.run(5)
        rec = ens.step_work[-1]
        assert rec["ensemble_batch"] == 2
        assert rec["active_voxels"] == ens.gate.count


class TestEnsembleKernels:
    def test_attempt_schedule_matches_solo(self):
        p = _params()
        seeds = np.array([3, 9], dtype=np.int64)
        rng = EnsembleRNG(seeds)
        pools = np.array([37.2, 5.9])
        stack = ParamsStack([p, p])
        flat = kernels.ensemble_extravasation_attempts(stack, rng, 12, pools)
        assert flat["gid"].size == int(flat["counts"].sum())
        for b in range(2):
            solo = kernels.extravasation_attempts(
                p, VoxelRNG(int(seeds[b])), 12, float(pools[b])
            )
            mine = kernels.member_attempts(flat, b)
            for key in ("gid", "accept_u", "life"):
                np.testing.assert_array_equal(mine[key], solo[key], err_msg=key)

    def test_attempt_schedule_empty_pools(self):
        rng = EnsembleRNG(np.array([1, 2], dtype=np.int64))
        stack = ParamsStack([_params(), _params()])
        flat = kernels.ensemble_extravasation_attempts(
            stack, rng, 0, np.zeros(2)
        )
        assert flat["gid"].size == 0
        assert list(flat["counts"]) == [0, 0]


class TestExpandSweep:
    def test_float_field(self):
        out = expand_sweep(_params(), "infectivity", [0.1, 0.2])
        assert [p.infectivity for p in out] == [0.1, 0.2]

    def test_int_field_rounds(self):
        out = expand_sweep(_params(), "num_infections", [1.2, 3.9])
        assert [p.num_infections for p in out] == [1, 4]

    def test_unknown_key_lists_fields(self):
        with pytest.raises(ValueError, match="infectivity"):
            expand_sweep(_params(), "not_a_param", [1, 2])


class TestParamsStack:
    def test_uniform_attribute_is_scalar(self):
        stack = ParamsStack([_params(), _params()])
        assert stack.infectivity == _params().infectivity

    def test_swept_attribute_broadcasts(self):
        stack = ParamsStack(expand_sweep(_params(), "infectivity", [0.1, 0.3]))
        arr = stack.infectivity
        assert arr.shape == (2, 1, 1)

    def test_attribute_cache_returns_same_object(self):
        stack = ParamsStack(expand_sweep(_params(), "infectivity", [0.1, 0.3]))
        assert stack.infectivity is stack.infectivity
