"""PhaseMetrics counter semantics, including the multi-rank merge."""

from repro.engine.metrics import PhaseMetrics


def _metrics(entries):
    m = PhaseMetrics()
    for name, seconds, skipped in entries:
        m.record(name, seconds, skipped=skipped)
    return m


class TestRecord:
    def test_executed_and_skipped_counted_separately(self):
        m = _metrics([("a", 0.5, False), ("a", 0.25, False), ("b", 1.0, True)])
        assert m.calls == {"a": 2}
        assert m.seconds == {"a": 0.75}
        assert m.skips == {"b": 1}
        assert m.phase_names() == ("a", "b")


class TestMerge:
    def test_merge_sums_per_phase(self):
        a = _metrics([("x", 1.0, False), ("y", 0.5, False), ("z", 0.0, True)])
        b = _metrics([("x", 2.0, False), ("z", 0.0, True), ("w", 0.25, False)])
        a.merge(b)
        assert a.seconds == {"x": 3.0, "y": 0.5, "w": 0.25}
        assert a.calls == {"x": 2, "y": 1, "w": 1}
        assert a.skips == {"z": 2}

    def test_merge_returns_self_for_chaining(self):
        total = PhaseMetrics()
        parts = [_metrics([("p", 1.0, False)]) for _ in range(3)]
        result = total.merge(parts[0]).merge(parts[1]).merge(parts[2])
        assert result is total
        assert total.seconds["p"] == 3.0
        assert total.calls["p"] == 3

    def test_merge_empty_is_identity(self):
        a = _metrics([("x", 1.0, False)])
        before = (dict(a.seconds), dict(a.calls), dict(a.skips))
        a.merge(PhaseMetrics())
        assert (a.seconds, a.calls, a.skips) == before

    def test_merge_does_not_mutate_source(self):
        a = PhaseMetrics()
        b = _metrics([("x", 1.0, False)])
        a.merge(b)
        assert b.seconds == {"x": 1.0}
        assert b.calls == {"x": 1}
