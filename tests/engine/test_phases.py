"""Unit tests for the declarative schedule vocabulary."""

import pytest

from repro.engine.phases import (
    PHASE_KINDS,
    PHASE_ORDER,
    FieldSet,
    Phase,
    PhaseKind,
    describe_schedule,
    exchange,
    kernel,
    validate_schedule,
)
from repro.grid.halo import MergeMode


def minimal_schedule():
    return (
        kernel("age_extravasate"),
        kernel("intents"),
        kernel("resolve"),
        kernel("epithelial"),
        kernel("diffuse"),
        kernel("reduce"),
    )


class TestPhaseConstruction:
    def test_kind_helpers(self):
        assert kernel("reduce").kind is PhaseKind.KERNEL
        assert exchange("open_exchange").kind is PhaseKind.EXCHANGE

    def test_kernel_phase_rejects_field_sets(self):
        fs = FieldSet("state", ("tcell",), MergeMode.REPLACE)
        with pytest.raises(ValueError, match="cannot carry field sets"):
            Phase("reduce", PhaseKind.KERNEL, exchanges=(fs,))

    def test_field_set_rejects_unknown_scope(self):
        with pytest.raises(ValueError, match="unknown field scope"):
            FieldSet("halo", ("tcell",), MergeMode.REPLACE)

    def test_canonical_kinds_follow_naming(self):
        for name in PHASE_ORDER:
            expected = (
                PhaseKind.EXCHANGE
                if name.endswith("_exchange")
                else PhaseKind.KERNEL
            )
            assert PHASE_KINDS[name] is expected


class TestValidateSchedule:
    def test_minimal_schedule_valid(self):
        validate_schedule(minimal_schedule())

    def test_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phase"):
            validate_schedule(minimal_schedule() + (kernel("teleport"),))

    def test_duplicate_phase(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_schedule(minimal_schedule() + (kernel("reduce"),))

    def test_kind_mismatch(self):
        bad = (Phase("open_exchange", PhaseKind.KERNEL),) + minimal_schedule()
        with pytest.raises(ValueError, match="canonical kind"):
            validate_schedule(bad)

    def test_missing_required_phase(self):
        partial = tuple(p for p in minimal_schedule() if p.name != "reduce")
        with pytest.raises(ValueError, match="missing required"):
            validate_schedule(partial)

    def test_out_of_canonical_order(self):
        shuffled = minimal_schedule()[::-1]
        with pytest.raises(ValueError, match="canonical order"):
            validate_schedule(shuffled)


def test_describe_schedule_lists_every_phase():
    text = describe_schedule(
        minimal_schedule()
        + (
            exchange(
                "concentration_exchange",
                FieldSet("state", ("virions",), MergeMode.REPLACE),
            ),
        )
    )
    # one line per phase; field sets rendered for exchanges
    assert len(text.splitlines()) == 7
    assert "state[virions]:REPLACE" in text
