"""Unit tests for the StepEngine, metrics hooks and driver facade."""

import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.engine import PhaseMetrics, SequentialBackend, StepEngine, kernel


def small_params(steps=5):
    return SimCovParams.fast_test(dim=(12, 12), num_infections=2,
                                  num_steps=steps)


class TestPhaseMetrics:
    def test_record_and_summary(self):
        m = PhaseMetrics()
        m.record("reduce", 0.25)
        m.record("reduce", 0.75)
        m.record("tile_sweep", 0.0, skipped=True)
        assert m.seconds["reduce"] == pytest.approx(1.0)
        assert m.calls["reduce"] == 2
        assert m.skips["tile_sweep"] == 1
        assert m.total_seconds() == pytest.approx(1.0)
        row = m.summary()["reduce"]
        assert row["mean_seconds"] == pytest.approx(0.5)
        skipped = m.summary()["tile_sweep"]
        assert skipped == {"seconds": 0.0, "calls": 0, "skips": 1,
                           "mean_seconds": 0.0}

    def test_format_is_a_table(self):
        m = PhaseMetrics()
        m.record("diffuse", 0.125)
        text = m.format()
        assert "diffuse" in text and "0.1250" in text


class TestStepEngine:
    def test_skipped_phases_counted_not_timed(self):
        engine = StepEngine(SequentialBackend(small_params(), seed=3))
        engine.run(4)
        m = engine.metrics
        # The sequential backend skips every exchange barrier + tile_sweep.
        for name in ("open_exchange", "boundary_exchange", "tile_sweep"):
            assert m.skips[name] == 4
            assert name not in m.calls
        for name in ("intents", "resolve", "reduce"):
            assert m.calls[name] == 4
        # step_work's per-step timings only include executed phases.
        for rec in engine.step_work:
            assert "open_exchange" not in rec["phase_seconds"]
            assert "reduce" in rec["phase_seconds"]

    def test_missing_reduce_raises(self):
        class NoReduce(SequentialBackend):
            def phase_reduce(self, ctx):
                return False  # never sets ctx.reduced

        engine = StepEngine(NoReduce(small_params(), seed=3))
        with pytest.raises(RuntimeError, match="did not set"):
            engine.step()

    def test_missing_handler_counts_as_skip(self):
        class NoSweepHandler(SequentialBackend):
            phase_tile_sweep = None

        backend = NoSweepHandler(small_params(), seed=3)
        # getattr(backend, "phase_tile_sweep") is None -> engine skips it.
        engine = StepEngine(backend)
        engine.step()
        assert engine.metrics.skips["tile_sweep"] == 1

    def test_custom_schedule_validated(self):
        backend = SequentialBackend(small_params(), seed=3)
        with pytest.raises(ValueError, match="missing required"):
            StepEngine(backend, schedule=(kernel("reduce"),))

    def test_run_defaults_to_params_num_steps(self):
        engine = StepEngine(SequentialBackend(small_params(steps=3), seed=3))
        series = engine.run()
        assert len(series) == 3 and engine.step_num == 3


class TestEngineDriverFacade:
    def test_checkpoint_scalars_are_settable(self):
        sim = SequentialSimCov(small_params(), seed=3)
        sim.run(2)
        sim.pool = 12.5
        sim.step_num = 40
        assert sim.engine.pool == 12.5
        assert sim.engine.step_num == 40
        # And reads delegate back out.
        assert sim.pool == 12.5 and sim.step_num == 40

    def test_facade_views_are_engine_state(self):
        sim = SequentialSimCov(small_params(), seed=3)
        sim.run(3)
        assert sim.series is sim.engine.series
        assert sim.step_work is sim.engine.step_work
        assert sim.phase_metrics is sim.engine.metrics
        assert sim.schedule is sim.engine.schedule
