"""Step-boundary preemption on the shared StepEngine.

The serving layer's contract: ``request_preempt`` stops an in-flight
``run`` before the next step starts (never mid-phase), so a shadow
snapshot taken at the break point resumes **bitwise identically** to an
uninterrupted run — the same argument the resilient dist runtime makes
for crash recovery.
"""

import numpy as np

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.io.checkpoint import CHECKPOINT_FIELDS, restore_state, snapshot_state

PARAMS = SimCovParams.fast_test(dim=(16, 16), num_infections=2, num_steps=40)


def series_matrix(series):
    return np.array(
        [[getattr(series[i], f) for f in (
            "healthy", "incubating", "expressing", "apoptotic", "dead",
            "tcells_tissue", "virions_total", "chemokine_total",
        )] for i in range(len(series))]
    )


class TestPreemptFlag:
    def test_stops_at_step_boundary(self):
        sim = SequentialSimCov(PARAMS, seed=3)
        sim.add_step_listener(
            lambda stats: sim.request_preempt() if stats.step == 9 else None
        )
        sim.run(40)
        assert sim.preempted
        assert sim.step_num == 10  # 10 full steps, none torn

    def test_flag_consumed_after_preempt(self):
        sim = SequentialSimCov(PARAMS, seed=3)
        sim.add_step_listener(
            lambda stats: sim.request_preempt() if stats.step == 4 else None
        )
        sim.run(40)
        assert sim.preempted
        # A fresh run is not poisoned by the old request.
        sim.engine.step_listeners.clear()
        sim.run(5)
        assert not sim.preempted
        assert sim.step_num == 10

    def test_stale_request_before_run_is_cleared(self):
        sim = SequentialSimCov(PARAMS, seed=3)
        sim.request_preempt()
        sim.run(3)
        assert sim.preempted
        assert sim.step_num == 0  # stopped before the first step
        sim.run(3)
        assert sim.step_num == 3

    def test_listener_sees_every_step(self):
        sim = SequentialSimCov(PARAMS, seed=3)
        seen = []
        sim.add_step_listener(lambda stats: seen.append(stats.step))
        sim.run(7)
        assert seen == list(range(7))


class TestPreemptResumeBitwise:
    def test_snapshot_resume_matches_uninterrupted(self):
        control = SequentialSimCov(PARAMS, seed=11)
        control.run(40)

        first = SequentialSimCov(PARAMS, seed=11)
        first.add_step_listener(
            lambda stats: first.request_preempt() if stats.step == 16 else None
        )
        first.run(40)
        assert first.preempted
        snap = snapshot_state(first)
        rows = series_matrix(first.series)

        second = SequentialSimCov(PARAMS, seed=11)
        restore_state(second, snap)
        second.run(40 - first.step_num)
        assert not second.preempted

        resumed = np.vstack([rows, series_matrix(second.series)])
        np.testing.assert_array_equal(resumed, series_matrix(control.series))
        for name in CHECKPOINT_FIELDS:
            np.testing.assert_array_equal(
                getattr(second.block, name)[second.block.interior],
                getattr(control.block, name)[control.block.interior],
                err_msg=name,
            )
