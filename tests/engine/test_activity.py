"""Unit tests for the activity-gating layer (repro.engine.activity) and
the vectorized TileGrid sweep machinery it builds on.

The vectorized tile reductions (`_dilate`, `_tile_any`, `voxel_mask`,
`active_voxel_count`) are each checked against a brute-force reference
on randomized masks, since the whole gating contract rests on them.
"""

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.engine.activity import ActivityGate
from repro.grid.tiling import TileGrid, _dilate, _tile_any


def _brute_dilate(mask):
    """Reference Moore dilation by one cell (all 3**ndim - 1 offsets)."""
    out = mask.copy()
    for offset in np.ndindex(*(3,) * mask.ndim):
        off = tuple(o - 1 for o in offset)
        if not any(off):
            continue
        src = tuple(
            slice(max(0, -o), mask.shape[d] - max(0, o)) for d, o in enumerate(off)
        )
        dst = tuple(
            slice(max(0, o), mask.shape[d] - max(0, -o)) for d, o in enumerate(off)
        )
        out[dst] |= mask[src]
    return out


class TestTileGridVectorization:
    @pytest.mark.parametrize("shape", [(7,), (9, 13), (1, 8), (5, 6, 7)])
    def test_dilate_matches_brute_force(self, shape):
        rng = np.random.default_rng(3)
        for density in (0.0, 0.05, 0.5, 1.0):
            mask = rng.random(shape) < density
            np.testing.assert_array_equal(_dilate(mask), _brute_dilate(mask))

    @pytest.mark.parametrize(
        "owned,tile", [((16, 16), (4, 4)), ((17, 13), (4, 5)), ((12, 12, 12), (4, 4, 4))]
    )
    def test_tile_any_matches_per_tile_loop(self, owned, tile):
        rng = np.random.default_rng(7)
        grid = TileGrid(owned, tile)
        mask = rng.random(owned) < 0.02
        got = _tile_any(mask, grid.tile_shape, grid.tiles_per_dim)
        for idx in np.ndindex(*grid.tiles_per_dim):
            sl = grid.tile_box(idx).slices_from((0,) * len(owned))
            assert got[idx] == mask[sl].any(), idx

    @pytest.mark.parametrize("owned,tile", [((16, 16), (4, 4)), ((17, 13), (4, 5))])
    def test_padded_sweep_matches_windowed_loop(self, owned, tile):
        """The dilate-then-reduce padded sweep equals the definitional rule:
        a tile is raw-active iff any voxel within one voxel of it (ghost
        ring included) is active."""
        rng = np.random.default_rng(11)
        ghost = 1
        padded = rng.random(tuple(s + 2 * ghost for s in owned)) < 0.03

        grid = TileGrid(owned, tile, ghost=ghost)
        grid.sweep(padded, padded=True)

        ref = np.zeros(grid.tiles_per_dim, dtype=bool)
        for idx in np.ndindex(*grid.tiles_per_dim):
            box = grid.tile_box(idx)
            window = tuple(
                slice(max(0, lo + ghost - 1), hi + ghost + 1)
                for lo, hi in zip(box.lo, box.hi)
            )
            ref[idx] = padded[window].any()
        expected = _brute_dilate(ref)
        expected |= grid._boundary_mask()
        np.testing.assert_array_equal(grid.active, expected)

    def test_voxel_mask_matches_slice_fill(self):
        grid = TileGrid((17, 13), (4, 5))
        rng = np.random.default_rng(5)
        grid.active = rng.random(grid.tiles_per_dim) < 0.4
        ref = np.zeros(grid.owned_shape, dtype=bool)
        for sl in grid.active_tile_slices():
            ref[sl] = True
        np.testing.assert_array_equal(grid.voxel_mask(), ref)

    def test_active_voxel_count_matches_boxes(self):
        grid = TileGrid((17, 13), (4, 5))
        rng = np.random.default_rng(9)
        grid.active = rng.random(grid.tiles_per_dim) < 0.4
        ref = sum(grid.tile_box(i).size for i in grid.active_tile_indices())
        assert grid.active_voxel_count() == ref


class TestActivityGate:
    def _gate(self, dim=(24, 24), **kw):
        p = SimCovParams.fast_test(dim=dim, num_infections=1, num_steps=20)
        sim = SequentialSimCov(p, seed=3, **kw)
        return sim, sim.gate

    def test_starts_all_active(self):
        sim, gate = self._gate()
        assert gate.region() == sim.block.interior
        assert gate.count == 24 * 24
        assert gate.fraction() == 1.0

    def test_sweep_shrinks_to_active_neighborhood(self):
        sim, gate = self._gate(dim=(64, 64))
        sim.run(gate.sweep_period)  # first due sweep has run
        region = gate.region()
        assert region is not None and region != sim.block.interior
        # Every raw-active voxel (with its one-voxel motion margin) must
        # stay inside the tracked mask, else the gate could miss writes.
        raw = sim.block.activity_mask(sim.params.min_chemokine)
        margin = _brute_dilate(raw)
        assert not (margin & ~gate.mask).any()

    def test_due_schedule(self):
        _, gate = self._gate()
        period = gate.sweep_period
        assert period > 1
        due = [s for s in range(4 * period) if gate.due(s)]
        assert due == [period - 1, 2 * period - 1, 3 * period - 1, 4 * period - 1]

    def test_disabled_gate_is_whole_interior(self):
        sim, gate = self._gate(active_gating=False)
        sim.run(10)
        assert gate.region() == sim.block.interior
        assert gate.count == 24 * 24
        assert gate.sweep() == 0

    def test_refresh_mode_dilates_raw_mask(self):
        sim, gate = self._gate(sweep_period=1, tile_shape=(1, 1))
        sim.run(5)
        raw = sim.block.activity_mask_padded(sim.params.min_chemokine)
        g = sim.block.ghost
        crop = tuple(slice(g, s - g) for s in raw.shape)
        np.testing.assert_array_equal(gate.mask, _brute_dilate(raw)[crop])

    def test_idle_domain_region_is_none(self):
        p = SimCovParams.fast_test(dim=(16, 16), num_infections=0, num_steps=10)
        sim = SequentialSimCov(p, seed=1)
        sim.run(sim.gate.sweep_period)
        assert sim.gate.region() is None
        assert sim.gate.count == 0

    def test_unsound_period_rejected(self):
        p = SimCovParams.fast_test(dim=(24, 24), num_infections=1, num_steps=10)
        with pytest.raises(ValueError, match="sweep_period"):
            SequentialSimCov(p, seed=0, tile_shape=(4, 4), sweep_period=5)
        with pytest.raises(ValueError, match="sweep_period"):
            SequentialSimCov(p, seed=0, sweep_period=0)

    def test_gate_with_pinned_sides_keeps_boundary_active(self):
        p = SimCovParams.fast_test(dim=(24, 24), num_infections=0, num_steps=10)
        sim = SequentialSimCov(p, seed=1)
        pins = np.zeros((2, 2), dtype=bool)
        pins[0, 0] = True
        gate = ActivityGate(sim.block, p.min_chemokine, tile_shape=(4, 4),
                            pin_sides=pins)
        gate.sweep()
        assert gate.mask[0, :].all()  # pinned low-x shell stays active
        assert not gate.mask[-1, :].any()
