"""Ensemble <-> checkpoint round trips.

A batched run's member view duck-types the checkpoint save surface, so
``save_checkpoint(path, sim.member(b))`` must produce a file that
restores into the continuation of member ``b``'s *solo* run — the
cross-implementation resume guarantee extended to the ensemble backend.
"""

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.engine.ensemble import EnsembleSimCov, expand_sweep
from repro.io.checkpoint import CHECKPOINT_FIELDS, load_checkpoint, save_checkpoint

SERIES_FIELDS = (
    "healthy", "dead", "tcells_tissue", "virions_total",
    "tcells_vasculature", "extravasations",
)


@pytest.fixture(scope="module")
def batched():
    """A 3-member sweep run paused at step 40."""
    base = SimCovParams.fast_test(dim=(16, 16), num_infections=2, num_steps=70)
    members = expand_sweep(base, "num_infections", [1, 2, 3])
    sim = EnsembleSimCov(members, seeds=[5, 6, 7])
    sim.run(40)
    return members, sim


class TestEnsembleCheckpoint:
    def test_member_view_exposes_save_surface(self, batched):
        members, sim = batched
        view = sim.member(1)
        assert view.params == members[1]
        assert view.step_num == 40
        assert view.rng.seed == 6
        assert view.pool == float(sim.pools[1])
        assert len(view.series) == 40

    def test_saved_member_restores_into_solo_continuation(
        self, batched, tmp_path
    ):
        members, sim = batched
        for b in range(3):
            path = str(tmp_path / f"member{b}.npz")
            save_checkpoint(path, sim.member(b))
            restored = load_checkpoint(path)
            assert restored.step_num == 40
            # Restored state must equal the member's batched state ...
            for name in CHECKPOINT_FIELDS:
                np.testing.assert_array_equal(
                    getattr(restored.block, name)[restored.block.interior],
                    sim.gather_field(name, member=b),
                    err_msg=f"member {b} field {name}",
                )
            # ... and continuing solo must match the uninterrupted solo run.
            restored.run(30)
            solo = SequentialSimCov(members[b], seed=5 + b)
            solo.run(70)
            for name in CHECKPOINT_FIELDS:
                np.testing.assert_array_equal(
                    getattr(restored.block, name)[restored.block.interior],
                    getattr(solo.block, name)[solo.block.interior],
                    err_msg=f"member {b} field {name} after resume",
                )
            for i in range(40, 70):
                assert restored.series[i - 40] == solo.series[i], (
                    f"member {b} stats diverged at step {i}"
                )

    def test_batched_continuation_matches_solo_after_checkpoint(
        self, batched, tmp_path
    ):
        """The batched run itself continues past the checkpoint bitwise."""
        members, sim = batched
        path = str(tmp_path / "member2.npz")
        save_checkpoint(path, sim.member(2))
        sim.run(30)  # continue the batched run to step 70
        restored = load_checkpoint(path)
        restored.run(30)
        for name in CHECKPOINT_FIELDS:
            np.testing.assert_array_equal(
                getattr(restored.block, name)[restored.block.interior],
                sim.gather_field(name, member=2),
                err_msg=name,
            )
