"""Collision safety for concurrent checkpoint writers.

The serving layer runs many jobs at once; two of them snapshotting at
the same moment must never interleave bytes, clobber each other, or —
the nastier failure — have one job's ``rotate_checkpoints`` sweep delete
the other's files.  The rule under test: every writer gets its **own
subdirectory** (per-job checkpoint dirs, per-key cache entries) and every
write is atomic tmp + ``os.replace``.
"""

import glob
import json
import os
import threading

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.io.checkpoint import (
    auto_checkpoint_path,
    load_checkpoint,
    rotate_checkpoints,
    save_checkpoint,
)
from repro.serve.cache import ResultCache
from repro.serve.jobs import Job, JobSpec
from repro.serve.runner import job_checkpoint_dir

PARAMS = SimCovParams.fast_test(dim=(10, 10), num_infections=1, num_steps=8)


def test_two_jobs_checkpoint_simultaneously(tmp_path):
    """Two jobs snapshot + rotate concurrently in per-job subdirectories:
    every surviving file loads cleanly and belongs to its own job."""
    root = str(tmp_path)
    jobs = [
        Job(id=f"job{i}", spec=JobSpec(seed=i), params=PARAMS, steps=8,
            cache_key=f"k{i}")
        for i in range(2)
    ]
    errors = []
    barrier = threading.Barrier(2)

    def worker(job):
        try:
            sim = SequentialSimCov(PARAMS, seed=job.spec.seed)
            directory = job_checkpoint_dir(root, job)
            barrier.wait()
            for _ in range(6):
                sim.step()
                save_checkpoint(
                    auto_checkpoint_path(directory, sim.step_num), sim
                )
                rotate_checkpoints(directory, keep=2)
        except Exception as err:  # noqa: BLE001 - surfaced below
            errors.append(f"{job.id}: {err!r}")

    threads = [threading.Thread(target=worker, args=(j,)) for j in jobs]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    for job in jobs:
        directory = job_checkpoint_dir(root, job)
        kept = sorted(glob.glob(os.path.join(directory, "ckpt_step*.npz")))
        assert len(kept) == 2, f"{job.id} rotation broke: {kept}"
        restored = load_checkpoint(kept[-1])
        assert restored.step_num == 6
        # The file belongs to this job: its seed pins the trajectory.
        control = SequentialSimCov(PARAMS, seed=job.spec.seed)
        control.run(6)
        assert restored.pool == control.pool


def test_job_dirs_are_disjoint(tmp_path):
    a = Job(id="aaa", spec=JobSpec(), params=PARAMS, steps=1, cache_key="x")
    b = Job(id="bbb", spec=JobSpec(), params=PARAMS, steps=1, cache_key="y")
    da = job_checkpoint_dir(str(tmp_path), a)
    db = job_checkpoint_dir(str(tmp_path), b)
    assert da != db
    assert not da.startswith(db) and not db.startswith(da)


def test_result_cache_concurrent_writers(tmp_path):
    """Many threads hammering the same disk cache: no torn JSON, every
    key readable afterwards (including by a fresh cache instance)."""
    directory = str(tmp_path / "cache")
    cache = ResultCache(directory)
    errors = []

    def worker(tid):
        try:
            for i in range(20):
                key = f"{tid % 2}{i:02d}sharedkey"  # heavy key collisions
                cache.put(key, {"tid": tid, "i": i, "rows": [i] * 16})
                got = cache.get(key)
                assert got is not None and got["rows"][0] == got["i"]
        except Exception as err:  # noqa: BLE001
            errors.append(repr(err))

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # A cold cache (fresh process after restart) reads every entry back.
    cold = ResultCache(directory)
    for tid in range(2):
        for i in range(20):
            entry = cold.get(f"{tid}{i:02d}sharedkey")
            assert entry is not None
            json.dumps(entry)  # valid JSON all the way down
