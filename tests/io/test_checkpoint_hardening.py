"""Hardening of the on-disk checkpoint format (ISSUE 5 satellite):
atomic writes, per-array CRC verification, rotation, and the explicit
typed params codec that replaced the repr/literal_eval round-trip."""

import dataclasses
import os
import zlib

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.io.checkpoint import (
    CHECKPOINT_FIELDS,
    CheckpointCorruptError,
    auto_checkpoint_path,
    decode_params,
    encode_params,
    load_checkpoint,
    rotate_checkpoints,
    save_checkpoint,
)


@pytest.fixture(scope="module")
def sim():
    p = SimCovParams.fast_test(dim=(16, 16), num_infections=1, num_steps=30)
    s = SequentialSimCov(p, seed=11)
    s.run(10)
    return s


class TestAtomicWrite:
    def test_no_tmp_file_left_behind(self, sim, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(str(path), sim)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ck.npz"]

    def test_overwrite_is_replace_not_append(self, sim, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(str(path), sim)
        first = path.stat().st_size
        save_checkpoint(str(path), sim)
        assert path.stat().st_size == first
        assert load_checkpoint(str(path)).step_num == 10


class TestCorruptionDetection:
    def _rewrite(self, path, mutate):
        """Re-save the npz with ``mutate(payload_dict)`` applied, keeping
        the original CRC entries (so mismatches are detectable)."""
        data = dict(np.load(path))
        mutate(data)
        with open(path, "wb") as fh:
            np.savez(fh, **data)

    def test_bitflip_in_array_raises(self, sim, tmp_path):
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, sim)

        def flip(data):
            arr = data["virions"].copy()
            arr.flat[0] += 1.0
            data["virions"] = arr

        self._rewrite(path, flip)
        with pytest.raises(CheckpointCorruptError, match="virions"):
            load_checkpoint(path)

    def test_corrupt_seed_gids_raises(self, sim, tmp_path):
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, sim)

        def flip(data):
            arr = data["seed_gids"].copy()
            arr.flat[0] += 1
            data["seed_gids"] = arr

        self._rewrite(path, flip)
        with pytest.raises(CheckpointCorruptError, match="seed_gids"):
            load_checkpoint(path)

    def test_truncated_file_raises(self, sim, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(str(path), sim)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointCorruptError, match="unreadable"):
            load_checkpoint(str(path))

    def test_missing_member_raises(self, sim, tmp_path):
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, sim)
        self._rewrite(path, lambda data: data.pop("tcell"))
        with pytest.raises(CheckpointCorruptError, match="unreadable"):
            load_checkpoint(path)

    def test_missing_file_is_not_masked(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(str(tmp_path / "nope.npz"))

    def test_crc_matches_recomputation(self, sim, tmp_path):
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, sim)
        with np.load(path) as data:
            for name in (*CHECKPOINT_FIELDS, "seed_gids"):
                expected = (
                    zlib.crc32(np.ascontiguousarray(data[name]).tobytes())
                    & 0xFFFFFFFF
                )
                assert int(data[f"crc_{name}"]) == expected, name


class TestRotation:
    def test_keeps_newest_n_by_step_number(self, tmp_path):
        for step in (2, 4, 10, 6):
            open(auto_checkpoint_path(str(tmp_path), step), "wb").close()
        (tmp_path / "unrelated.npz").write_bytes(b"")
        removed = rotate_checkpoints(str(tmp_path), keep=2)
        assert sorted(os.path.basename(r) for r in removed) == [
            "ckpt_step00000002.npz",
            "ckpt_step00000004.npz",
        ]
        survivors = sorted(p.name for p in tmp_path.iterdir())
        assert survivors == [
            "ckpt_step00000006.npz",
            "ckpt_step00000010.npz",
            "unrelated.npz",
        ]

    def test_missing_directory_is_noop(self, tmp_path):
        assert rotate_checkpoints(str(tmp_path / "nope"), keep=3) == []

    def test_keep_validated(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            rotate_checkpoints(str(tmp_path), keep=0)


class TestParamsCodec:
    def _exercised(self):
        """A params instance with every field moved off its default,
        including the Optional ints in both states and numpy scalars
        (the failure mode of the old repr round-trip)."""
        base = SimCovParams.fast_test(dim=(24, 12), num_infections=3)
        overrides = {}
        for f in dataclasses.fields(SimCovParams):
            value = getattr(base, f.name)
            if isinstance(value, tuple):
                continue
            elif value is None:
                overrides[f.name] = np.int64(17)
            elif isinstance(value, int):
                overrides[f.name] = np.int64(value + 1)
            else:
                overrides[f.name] = np.float64(value) * 0.5
        return dataclasses.replace(base, **overrides)

    def test_roundtrip_every_field(self):
        params = self._exercised()
        decoded = decode_params(encode_params(params))
        for f in dataclasses.fields(SimCovParams):
            original = getattr(params, f.name)
            restored = getattr(decoded, f.name)
            assert restored == original, f.name
            # Declared types, not whatever numpy type went in.
            assert type(restored) in (int, float, tuple), f.name

    def test_none_fields_stay_none(self):
        params = SimCovParams.fast_test()
        assert params.antiviral_start is None
        decoded = decode_params(encode_params(params))
        assert decoded.antiviral_start is None
        assert decoded.antibody_start is None
        assert decoded == params

    def test_dim_restored_as_tuple_of_ints(self):
        params = SimCovParams.fast_test(dim=(8, 16, 4))
        decoded = decode_params(encode_params(params))
        assert decoded.dim == (8, 16, 4)
        assert all(type(v) is int for v in decoded.dim)

    def test_checkpointed_params_equal_original(self, sim, tmp_path):
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, sim)
        assert load_checkpoint(path).params == sim.params

    def test_unknown_field_type_fails_loudly(self):
        from repro.io.checkpoint import _code_field

        with pytest.raises(TypeError, match="no checkpoint codec"):
            _code_field("widget", dict, {}, decoding=False)
