"""Tests for time-series persistence."""

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.core.stats import StepStats
from repro.io.timeseries import StatsLogger, load_timeseries, save_timeseries


@pytest.fixture(scope="module")
def run():
    p = SimCovParams.fast_test(dim=(16, 16), num_infections=2, num_steps=40)
    sim = SequentialSimCov(p, seed=1)
    sim.run()
    return sim


class TestSaveLoad:
    def test_roundtrip(self, run, tmp_path):
        path = str(tmp_path / "stats.csv")
        save_timeseries(path, run.series)
        loaded = load_timeseries(path)
        assert len(loaded) == len(run.series)
        for name in ("virions_total", "healthy", "tcells_tissue"):
            np.testing.assert_allclose(
                loaded.field(name), run.series.field(name)
            )

    def test_loaded_peaks_match(self, run, tmp_path):
        path = str(tmp_path / "stats.csv")
        save_timeseries(path, run.series)
        loaded = load_timeseries(path)
        assert loaded.peak("virions_total") == run.series.peak("virions_total")

    def test_creates_directories(self, run, tmp_path):
        path = str(tmp_path / "a" / "b" / "stats.csv")
        save_timeseries(path, run.series)
        assert load_timeseries(path)[0].step == 0


class TestStatsLogger:
    def test_incremental_logging(self, tmp_path):
        path = str(tmp_path / "log.csv")
        p = SimCovParams.fast_test(dim=(12, 12), num_infections=1, num_steps=10)
        sim = SequentialSimCov(p, seed=2)
        with StatsLogger(path) as logger:
            for _ in range(10):
                logger.log(sim.step())
            assert logger.rows_written == 10
        loaded = load_timeseries(path)
        assert len(loaded) == 10
        np.testing.assert_allclose(
            loaded.field("virions_total"), sim.series.field("virions_total")
        )

    def test_partial_log_readable(self, tmp_path):
        """Flush-per-row: an interrupted run leaves usable output."""
        path = str(tmp_path / "log.csv")
        logger = StatsLogger(path)
        logger.log(StepStats(0, 1, 0, 0, 0, 0, 0, 0.5, 0.0))
        # Do NOT close; read anyway.
        loaded = load_timeseries(path)
        assert len(loaded) == 1
        assert loaded[0].virions_total == 0.5
        logger.close()

    def test_double_close_safe(self, tmp_path):
        logger = StatsLogger(str(tmp_path / "x.csv"))
        logger.close()
        logger.close()
