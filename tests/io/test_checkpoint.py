"""Tests for checkpoint/restore, including cross-implementation resume."""

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.io.checkpoint import CHECKPOINT_FIELDS, load_checkpoint, save_checkpoint
from repro.simcov_cpu.simulation import SimCovCPU
from repro.simcov_gpu.simulation import SimCovGPU


@pytest.fixture(scope="module")
def reference():
    """An uninterrupted 100-step run, with a checkpoint taken at step 60."""
    p = SimCovParams.fast_test(dim=(24, 24), num_infections=2, num_steps=100)
    sim = SequentialSimCov(p, seed=77)
    sim.run(60)
    return p, sim


class TestSaveLoad:
    def test_roundtrip_state(self, reference, tmp_path):
        p, sim = reference
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, sim)
        restored = load_checkpoint(path)
        assert restored.step_num == 60
        assert restored.pool == sim.pool
        assert restored.params == p
        for name in CHECKPOINT_FIELDS:
            np.testing.assert_array_equal(
                getattr(restored.block, name)[restored.block.interior],
                getattr(sim.block, name)[sim.block.interior],
                err_msg=name,
            )

    def test_version_checked(self, reference, tmp_path):
        p, sim = reference
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, sim)
        data = dict(np.load(path))
        data["format_version"] = np.int64(99)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="format"):
            load_checkpoint(path)


class TestResumeExactness:
    def _finish(self, sim, steps):
        for _ in range(steps):
            last = sim.step()
        return last

    def test_resume_sequential_matches_uninterrupted(self, reference, tmp_path):
        p, sim60 = reference
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, sim60)
        # Uninterrupted control.
        control = SequentialSimCov(p, seed=77)
        control.run(100)
        resumed = load_checkpoint(path)
        last = self._finish(resumed, 40)
        assert last == control.series[99]
        np.testing.assert_array_equal(
            resumed.block.epi_state, control.block.epi_state
        )
        np.testing.assert_array_equal(resumed.block.tcell, control.block.tcell)

    def test_resume_on_gpu_matches_uninterrupted(self, reference, tmp_path):
        """The headline property: a sequential checkpoint resumes on the
        4-GPU implementation and stays bitwise identical."""
        p, sim60 = reference
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, sim60)
        control = SequentialSimCov(p, seed=77)
        control.run(100)
        resumed = load_checkpoint(
            path,
            make_sim=lambda pp, s, g: SimCovGPU(
                pp, num_devices=4, seed=s, seed_gids=g, tile_shape=(4, 4)
            ),
        )
        self._finish(resumed, 40)
        for name in ("epi_state", "tcell", "virions", "epi_timer"):
            np.testing.assert_array_equal(
                resumed.gather_field(name),
                getattr(control.block, name)[control.block.interior],
                err_msg=name,
            )

    def test_resume_on_cpu_ranks(self, reference, tmp_path):
        p, sim60 = reference
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, sim60)
        control = SequentialSimCov(p, seed=77)
        control.run(80)
        resumed = load_checkpoint(
            path,
            make_sim=lambda pp, s, g: SimCovCPU(pp, nranks=3, seed=s,
                                                seed_gids=g),
        )
        self._finish(resumed, 20)
        np.testing.assert_array_equal(
            resumed.gather_field("tcell"),
            control.block.tcell[control.block.interior],
        )

    def test_resume_through_gated_path(self, tmp_path):
        """Resume works through the active-region fast path: the gate is
        not checkpointed (a resumed gate starts all-active and the next
        periodic sweep re-derives the true active set), so a gated run
        saved mid-run — deliberately *between* sweeps — must still match
        both the uninterrupted gated run and the ungated ground truth."""
        total = 50
        p = SimCovParams.fast_test(dim=(96, 96), num_infections=1,
                                   num_steps=total)
        sim = SequentialSimCov(p, seed=9)
        period = sim.gate.sweep_period
        assert period > 1
        save_at = 2 * period + 3  # mid sweep interval
        sim.run(save_at)
        assert sim.gate.region() != sim.block.interior  # gating engaged
        path = str(tmp_path / "gated.npz")
        save_checkpoint(path, sim)

        control = SequentialSimCov(p, seed=9)
        control.run(total)
        ungated = SequentialSimCov(p, seed=9, active_gating=False)
        ungated.run(total)

        resumed = load_checkpoint(path)
        assert resumed.gate.region() == resumed.block.interior  # all-active
        last = self._finish(resumed, total - save_at)
        assert last == control.series[total - 1]
        assert last == ungated.series[total - 1]
        for name in CHECKPOINT_FIELDS:
            np.testing.assert_array_equal(
                getattr(resumed.block, name), getattr(control.block, name),
                err_msg=name,
            )
            np.testing.assert_array_equal(
                getattr(resumed.block, name), getattr(ungated.block, name),
                err_msg=name,
            )

    def test_gpu_checkpoint_resumes_sequentially(self, tmp_path):
        """Checkpoints are implementation-independent in both directions."""
        p = SimCovParams.fast_test(dim=(16, 16), num_infections=1,
                                   num_steps=50)
        gpu = SimCovGPU(p, num_devices=2, seed=5)
        gpu.run(25)
        path = str(tmp_path / "g.npz")
        save_checkpoint(path, gpu)
        control = SequentialSimCov(p, seed=5)
        control.run(50)
        resumed = load_checkpoint(path)
        for _ in range(25):
            resumed.step()
        np.testing.assert_array_equal(
            resumed.block.epi_state, control.block.epi_state
        )
