"""Property tests for the serving result-cache key.

The key must be a *canonical* function of ``(params, seeds, steps)``:
equal inputs — however they were constructed — produce the identical
key, and changing any single params field, any seed, or the step count
produces a different key.  Both directions ride on the typed params
codec (:func:`repro.io.checkpoint.encode_params`, format v2), which is
why these tests live next to the format tests.
"""

from dataclasses import fields as dc_fields

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.params import SimCovParams
from repro.io.checkpoint import decode_params, encode_params
from repro.serve.jobs import result_cache_key

SETTINGS = settings(max_examples=50, deadline=None)

#: Fields perturbable without tripping cross-field validation.
MUTABLE_INT = (
    "num_steps", "incubation_period", "expressing_period",
    "apoptosis_period", "tcell_initial_delay", "tcell_vascular_period",
    "tcell_tissue_period", "tcell_binding_period",
)
#: Unbounded-above float fields (rates); [0, 1]-bounded ones are
#: perturbed by halving instead.
MUTABLE_FLOAT = ("chemokine_production", "tcell_generation_rate",
                 "antibody_factor")
BOUNDED_FLOAT = (
    "infectivity", "virion_production", "virion_clearance",
    "virion_diffusion", "chemokine_decay", "chemokine_diffusion",
    "extravasate_fraction", "antiviral_factor", "min_chemokine",
)


def base_params(side=12, foi=2, steps=30):
    return SimCovParams.fast_test(
        dim=(side, side), num_infections=foi, num_steps=steps
    )


@st.composite
def params_strategy(draw):
    return base_params(
        side=draw(st.integers(min_value=8, max_value=24)),
        foi=draw(st.integers(min_value=1, max_value=4)),
        steps=draw(st.integers(min_value=1, max_value=200)),
    )


class TestKeyCanonical:
    @SETTINGS
    @given(params_strategy(), st.integers(0, 2**31 - 1), st.integers(1, 500))
    def test_equal_inputs_equal_key(self, params, seed, steps):
        rebuilt = decode_params(encode_params(params))
        assert result_cache_key(params, (seed,), steps) == \
            result_cache_key(rebuilt, (seed,), steps)

    @SETTINGS
    @given(params_strategy(), st.integers(0, 1000))
    def test_numpy_seed_types_collapse(self, params, seed):
        assert result_cache_key(params, (seed,), 10) == \
            result_cache_key(params, np.array([seed], dtype=np.int64), 10)


class TestKeySensitive:
    @SETTINGS
    @given(
        st.sampled_from(MUTABLE_INT + MUTABLE_FLOAT + BOUNDED_FLOAT),
        st.integers(1, 7),
    )
    def test_any_single_field_change_changes_key(self, field, bump):
        params = base_params()
        old = getattr(params, field)
        if field in BOUNDED_FLOAT:
            new = old / (1 + bump)  # stays inside [0, 1]
        elif isinstance(old, int):
            new = old + bump
        else:
            new = old * (1 + bump / 8)
        changed = params.with_(**{field: new})
        assert result_cache_key(params, (0,), 10) != \
            result_cache_key(changed, (0,), 10)

    def test_every_encoded_field_feeds_the_key(self):
        # Structural guarantee behind the property above: the key hashes
        # the full typed encoding, so no params field can be silently
        # dropped from it.
        import json

        params = base_params()
        assert set(json.loads(encode_params(params))) == {
            f.name for f in dc_fields(params)
        }

    @SETTINGS
    @given(st.integers(0, 100), st.integers(1, 8))
    def test_seed_set_changes_key(self, seed, width):
        params = base_params()
        solo = result_cache_key(params, (seed,), 10)
        assert result_cache_key(params, (seed + 1,), 10) != solo
        ensemble = result_cache_key(
            params, range(seed, seed + width + 1), 10
        )
        assert ensemble != solo

    @SETTINGS
    @given(st.integers(1, 400))
    def test_steps_change_key(self, steps):
        params = base_params()
        assert result_cache_key(params, (0,), steps) != \
            result_cache_key(params, (0,), steps + 1)

    def test_dim_changes_key(self):
        a = base_params(side=12)
        b = base_params(side=13)
        assert result_cache_key(a, (0,), 10) != result_cache_key(b, (0,), 10)
