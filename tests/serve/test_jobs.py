"""JobSpec validation, resolution, and the canonical result-cache key."""

import pytest

from repro.core.params import SimCovParams
from repro.serve.jobs import (
    JobSpec,
    SpecError,
    apply_overrides,
    result_cache_key,
    stats_row,
)


class TestSpecValidation:
    def test_defaults(self):
        spec = JobSpec.from_json({})
        assert spec.backend == "sequential"
        assert spec.seed == 0
        assert spec.priority == 0

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecError, match="unknown job fields"):
            JobSpec.from_json({"stepz": 10})

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecError, match="unknown backend"):
            JobSpec.from_json({"backend": "tpu"})

    def test_priority_range(self):
        with pytest.raises(SpecError, match="priority"):
            JobSpec.from_json({"priority": 10})
        with pytest.raises(SpecError, match="priority"):
            JobSpec.from_json({"priority": -1})

    def test_ensemble_needs_count(self):
        with pytest.raises(SpecError, match="ensemble"):
            JobSpec.from_json({"backend": "ensemble"})

    def test_count_needs_ensemble_backend(self):
        with pytest.raises(SpecError, match="ensemble"):
            JobSpec.from_json({"backend": "sequential", "ensemble": 4})

    def test_non_dict_rejected(self):
        with pytest.raises(SpecError, match="JSON object"):
            JobSpec.from_json([1, 2])

    def test_unknown_config_rejected(self):
        spec = JobSpec.from_json({"config": "galactic_3d"})
        with pytest.raises(SpecError):
            spec.resolve_params()


class TestResolution:
    def test_config_defaults_flow_through(self):
        params, steps = JobSpec.from_json({"config": "small_2d"}).resolve_params()
        assert params.dim == (16, 16)
        assert steps == params.num_steps

    def test_explicit_steps_override_config(self):
        params, steps = JobSpec.from_json(
            {"config": "small_2d", "steps": 7}
        ).resolve_params()
        assert steps == 7
        assert params.num_steps == 7

    def test_num_steps_override_wins(self):
        params, steps = JobSpec.from_json(
            {"config": "small_2d", "steps": 7, "overrides": {"num_steps": 12}}
        ).resolve_params()
        assert steps == 12
        assert params.num_steps == 12

    def test_ensemble_seed_range(self):
        spec = JobSpec.from_json(
            {"backend": "ensemble", "ensemble": 3, "seed": 5}
        )
        assert spec.seeds() == (5, 6, 7)

    def test_solo_single_seed(self):
        assert JobSpec.from_json({"seed": 9}).seeds() == (9,)

    def test_to_json_roundtrip(self):
        spec = JobSpec.from_json(
            {"config": "small_2d", "steps": 9, "seed": 3,
             "overrides": {"virion_production": 800}}
        )
        assert JobSpec.from_json(spec.to_json()) == spec


class TestOverrides:
    def setup_method(self):
        self.params = SimCovParams.fast_test(dim=(8, 8))

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="unknown override"):
            apply_overrides(self.params, {"virulence": 2})

    def test_int_field_rounds(self):
        out = apply_overrides(self.params, {"incubation_period": 9.6})
        assert out.incubation_period == 10

    def test_float_field_casts(self):
        out = apply_overrides(self.params, {"virion_clearance": 0.125})
        assert out.virion_clearance == 0.125

    def test_dim_tuple(self):
        out = apply_overrides(self.params, {"dim": [12, 10]})
        assert out.dim == (12, 10)


class TestCacheKey:
    def test_equivalent_specs_share_key(self):
        # A spec that spells out small_2d's values must hash identically
        # to the one that names the config.
        a = JobSpec.from_json({"config": "small_2d"})
        pa, sa = a.resolve_params()
        b = JobSpec.from_json(
            {"dim": [16, 16], "steps": sa,
             "overrides": {"num_infections": pa.num_infections}}
        )
        pb, sb = b.resolve_params()
        assert result_cache_key(pa, a.seeds(), sa) == \
            result_cache_key(pb, b.seeds(), sb)

    def test_backend_not_keyed(self):
        # Bitwise determinism across backends is the cache's correctness
        # argument: cpu and sequential submissions collapse to one key.
        a = JobSpec.from_json({"config": "small_2d", "backend": "sequential"})
        b = JobSpec.from_json(
            {"config": "small_2d", "backend": "cpu", "nranks": 4}
        )
        pa, sa = a.resolve_params()
        pb, sb = b.resolve_params()
        assert result_cache_key(pa, a.seeds(), sa) == \
            result_cache_key(pb, b.seeds(), sb)

    def test_seed_and_steps_keyed(self):
        spec = JobSpec.from_json({"config": "small_2d"})
        p, s = spec.resolve_params()
        base = result_cache_key(p, (0,), s)
        assert result_cache_key(p, (1,), s) != base
        assert result_cache_key(p, (0, 1), s) != base
        assert result_cache_key(p, (0,), s + 1) != base


def test_stats_row_exact_floats():
    from repro.core.model import SequentialSimCov

    sim = SequentialSimCov(SimCovParams.fast_test(dim=(8, 8)), seed=1)
    stats = sim.step()
    row = stats_row(stats)
    assert row["virions_total"] == stats.virions_total  # no rounding
    assert row["step"] == 0
