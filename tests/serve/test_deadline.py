"""Deadline watchdog and hung-worker detection.

A running job past its ``deadline_s`` is preempted-then-failed cleanly
(checkpoint preserved for a manual resume); a queued job past its
deadline fails without ever occupying a worker; a worker that stops
heartbeating is abandoned and the job retried on a fresh thread.
"""

import time

from repro.resilience import RestartPolicy
from repro.serve import BackgroundServer, ServeApp, ServeClient
from repro.serve.faults import ServeFaultSpec

SPEC = {"config": "small_2d", "steps": 25, "seed": 4, "backend": "sequential"}


def serve(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("watchdog_interval_s", 0.02)
    return BackgroundServer(ServeApp(**kwargs))


class TestDeadlines:
    def test_running_job_preempted_then_failed(self, tmp_path):
        with serve(checkpoint_dir=str(tmp_path)) as app:
            client = ServeClient(port=app.port)
            resp = client.submit(
                dict(SPEC, steps=5000, deadline_s=0.3)
            )
            final = client.wait(resp["job"]["id"], timeout=30.0)
            metrics = client.metrics()
            job = app.jobs[resp["job"]["id"]]
        assert final["state"] == "failed"
        assert "DeadlineExceededError" in final["error"]
        assert "checkpoint preserved" in final["error"]
        assert metrics["deadline_expired"] == 1
        # The preemption checkpoint survives for a manual resume.
        assert job.resume_checkpoint is not None
        assert final["steps_done"] < 5000

    def test_queued_job_fails_without_running(self):
        with serve(max_workers=1) as app:
            client = ServeClient(port=app.port)
            hog = client.submit(dict(SPEC, steps=800))
            starved = client.submit(
                dict(SPEC, seed=9, steps=800, deadline_s=0.2)
            )
            final = client.wait(starved["job"]["id"], timeout=30.0)
            client.wait(hog["job"]["id"], timeout=60.0)
        assert final["state"] == "failed"
        assert "DeadlineExceededError" in final["error"]
        assert final["started_at"] is None  # never reached a worker

    def test_deadline_spec_validation(self):
        from repro.serve.jobs import JobSpec, SpecError

        import pytest

        with pytest.raises(SpecError, match="deadline_s"):
            JobSpec.from_json(dict(SPEC, deadline_s=-1.0))
        spec = JobSpec.from_json(dict(SPEC, deadline_s=2.5))
        assert spec.deadline_s == 2.5
        # Deadline is scheduling metadata: the cache key ignores it.
        bare = JobSpec.from_json(SPEC)
        assert spec.cache_signature() == bare.cache_signature()


class TestHangDetection:
    def test_hung_worker_reclaimed_and_job_retried(self):
        fault = ServeFaultSpec(job=0, step=3, mode="worker_hang")
        with serve(
            fault=fault,
            hang_timeout_s=0.3,
            retry_policy=RestartPolicy(max_restarts=3, backoff=0.01),
        ) as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            final = client.wait(resp["job"]["id"], timeout=60.0)
            metrics = client.metrics()
            # Unpark the abandoned thread so shutdown joins promptly; its
            # late report must be discarded (stale generation).
            fault.release.set()
            time.sleep(0.1)
            after = client.status(resp["job"]["id"])
        assert final["state"] == "done"
        assert metrics["hung_workers"] == 1
        assert metrics["retries"] == 1
        assert final["incidents"][0]["error_type"] == "WorkerHangError"
        assert after["state"] == "done"  # stale thread changed nothing
        assert after["steps_done"] == SPEC["steps"]

    def test_slow_worker_within_timeout_is_left_alone(self):
        fault = ServeFaultSpec(job=0, step=3, mode="worker_slow",
                               seconds=0.2)
        with serve(hang_timeout_s=5.0, fault=fault) as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            final = client.wait(resp["job"]["id"], timeout=60.0)
            metrics = client.metrics()
        assert final["state"] == "done"
        assert metrics["hung_workers"] == 0
        assert metrics["retries"] == 0
