"""Journal framing, replay, torn tails and compaction.

The crash model is SIGKILL: anything `flush()`ed before the kill is on
disk, plus possibly a partial final frame.  The property tests drive
exactly that — arbitrary record streams cut at arbitrary byte positions
must replay to a prefix of the original stream, never crash, never
invent records.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.journal import (
    JobJournal,
    JournalCorruptError,
    fold_records,
    frame_record,
    list_segments,
    read_frames,
    segment_path,
)


def drain_frames(data: bytes):
    """Exhaust read_frames, returning (records, stop_offset)."""
    gen = read_frames(data)
    records = []
    while True:
        try:
            _off, record = next(gen)
        except StopIteration as fin:
            return records, fin.value
        records.append(record)


def sample_records(n):
    return [
        {"type": "submit", "job": f"j{i}", "seq": i, "spec": {"seed": i}}
        for i in range(n)
    ]


class TestFraming:
    def test_round_trip(self):
        records = sample_records(5)
        blob = b"".join(frame_record(r) for r in records)
        out, stop = drain_frames(blob)
        assert out == records
        assert stop == len(blob)

    def test_empty(self):
        out, stop = drain_frames(b"")
        assert out == []
        assert stop == 0

    def test_flipped_bit_stops_at_frame_boundary(self):
        records = sample_records(3)
        frames = [frame_record(r) for r in records]
        blob = bytearray(b"".join(frames))
        # Corrupt a payload byte inside the second frame.
        blob[len(frames[0]) + 12] ^= 0xFF
        out, stop = drain_frames(bytes(blob))
        assert out == records[:1]
        assert stop == len(frames[0])


@settings(max_examples=60, deadline=None)
@given(
    n_records=st.integers(min_value=1, max_value=8),
    cut_back=st.integers(min_value=0, max_value=200),
)
def test_torn_tail_always_replays_a_prefix(n_records, cut_back):
    """Truncating the log at ANY byte position yields a prefix of the
    record stream — the torn bytes never crash replay or invent records."""
    records = sample_records(n_records)
    frames = [frame_record(r) for r in records]
    blob = b"".join(frames)
    cut = max(0, len(blob) - cut_back)
    out, stop = drain_frames(blob[:cut])
    assert out == records[:len(out)]
    assert stop <= cut
    # Every record whose frame survived the cut intact is recovered.
    whole = 0
    consumed = 0
    for frame in frames:
        consumed += len(frame)
        if consumed <= cut:
            whole += 1
    assert len(out) == whole


@settings(max_examples=40, deadline=None)
@given(cut_back=st.integers(min_value=1, max_value=40))
def test_replay_truncates_torn_tail_with_warning(tmp_path_factory, cut_back):
    tmp_path = tmp_path_factory.mktemp("journal")
    journal = JobJournal(str(tmp_path))
    records = sample_records(4)
    for r in records:
        journal.append(r)
    journal.close()
    path = segment_path(str(tmp_path), 0)
    size = os.path.getsize(path)
    cut = max(1, size - cut_back)
    with open(path, "r+b") as fh:
        fh.truncate(cut)
    fresh = JobJournal(str(tmp_path))
    if cut == size:
        replayed = fresh.replay()
        assert replayed == records
    else:
        with pytest.warns(RuntimeWarning, match="torn record"):
            replayed = fresh.replay()
        assert replayed == records[:len(replayed)]
        assert fresh.truncated_tail
        # The truncation is persistent: a second replay is clean.
        again = JobJournal(str(tmp_path)).replay()
        assert again == replayed


class TestReplay:
    def test_round_trip_through_files(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        records = sample_records(6)
        for r in records:
            journal.append(r)
        journal.close()
        assert JobJournal(str(tmp_path)).replay() == records

    def test_torn_partial_frame_api(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.append({"type": "submit", "job": "a", "seq": 0, "spec": {}})
        journal.append_torn({"type": "complete", "job": "a"})
        journal.close()
        with pytest.warns(RuntimeWarning, match="torn record"):
            replayed = JobJournal(str(tmp_path)).replay()
        assert replayed == [
            {"type": "submit", "job": "a", "seq": 0, "spec": {}}
        ]

    def test_corruption_in_earlier_segment_raises(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.append({"type": "submit", "job": "a", "seq": 0, "spec": {}})
        journal.close()
        # A second (newer) segment makes segment 0 non-final.
        with open(segment_path(str(tmp_path), 1), "wb") as fh:
            fh.write(frame_record({"type": "complete", "job": "a"}))
        with open(segment_path(str(tmp_path), 0), "r+b") as fh:
            fh.truncate(5)
        with pytest.raises(JournalCorruptError, match="not the final"):
            JobJournal(str(tmp_path)).replay()

    def test_empty_directory(self, tmp_path):
        assert JobJournal(str(tmp_path)).replay() == []


class TestCompaction:
    def test_compact_replaces_segments_atomically(self, tmp_path):
        journal = JobJournal(str(tmp_path), compact_bytes=1)
        for r in sample_records(10):
            journal.append(r)
        assert journal.should_compact
        folded_state = [
            {"type": "submit", "job": "j9", "seq": 9, "spec": {"seed": 9}}
        ]
        journal.compact(folded_state)
        segments = list_segments(str(tmp_path))
        assert [index for index, _ in segments] == [1]
        assert JobJournal(str(tmp_path)).replay() == folded_state
        # The journal stays appendable after compaction.
        journal.append({"type": "complete", "job": "j9"})
        journal.close()
        assert len(JobJournal(str(tmp_path)).replay()) == 2


class TestFold:
    def test_last_wins_per_job(self):
        records = [
            {"type": "submit", "job": "a", "seq": 1, "spec": {"seed": 1}},
            {"type": "start", "job": "a", "attempt": 1, "from_step": 0},
            {
                "type": "preempt", "job": "a", "steps_done": 7,
                "preemptions": 1, "rows": [{"step": 0}],
                "checkpoint": "/ck/a.npz",
            },
            {"type": "submit", "job": "b", "seq": 2, "spec": {"seed": 2}},
            {"type": "complete", "job": "b"},
        ]
        folded = fold_records(records)
        assert folded["a"]["last"] == "preempt"
        assert folded["a"]["steps_done"] == 7
        assert folded["a"]["rows"] == [{"step": 0}]
        assert folded["a"]["checkpoint"] == "/ck/a.npz"
        assert folded["b"]["last"] == "complete"

    def test_retry_records_accumulate_incidents(self):
        records = [
            {"type": "submit", "job": "a", "seq": 1, "spec": {}},
            {"type": "retry", "job": "a", "incident": {"index": 1}},
            {"type": "retry", "job": "a", "incident": {"index": 2}},
            {"type": "fail", "job": "a", "error": "boom",
             "incidents": [{"index": 1}, {"index": 2}, {"index": 3}]},
        ]
        folded = fold_records(records)
        assert folded["a"]["last"] == "fail"
        assert folded["a"]["error"] == "boom"
        assert len(folded["a"]["incidents"]) == 3

    def test_unknown_types_skipped(self):
        folded = fold_records([
            {"type": "???", "job": "a"},
            {"type": "submit"},  # no job id
            {"not": "a record"},
        ])
        assert folded == {}
