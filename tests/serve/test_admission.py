"""Admission control, readiness and SSE resume.

Overload must answer with *typed* 429/503 JSON carrying ``Retry-After``
— never a hang or a dropped socket; cache hits are always admitted; a
draining server flunks readiness while staying live; a reconnecting SSE
client resumes exactly after its ``Last-Event-ID``.
"""

import http.client
import json

import pytest

from repro.serve import BackgroundServer, ServeApp, ServeClient, ServeError
from repro.serve.client import parse_sse

SPEC = {"config": "small_2d", "steps": 25, "seed": 4, "backend": "sequential"}


def serve(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("max_workers", 1)
    return BackgroundServer(ServeApp(**kwargs))


def raw_post_jobs(port, spec):
    """POST /jobs with raw http.client, returning (status, headers, body)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(
            "POST", "/jobs", body=json.dumps(spec),
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), json.loads(resp.read())
    finally:
        conn.close()


class TestQueueBound:
    def test_queue_full_is_typed_503(self):
        with serve(max_queue_depth=1) as app:
            client = ServeClient(port=app.port)
            running = client.submit(dict(SPEC, steps=600))
            queued = client.submit(dict(SPEC, seed=5, steps=600))
            status, headers, body = raw_post_jobs(
                app.port, dict(SPEC, seed=6, steps=600)
            )
            assert status == 503
            assert body["reason"] == "queue_full"
            assert float(body["retry_after"]) > 0
            assert "Retry-After" in headers
            metrics = client.metrics()
            assert metrics["rejected"] == 1
            # The registry carries a per-reason counter for scrapers.
            assert (
                'simcov_serve_rejected_reason_total{reason="queue_full"}'
                in client.metrics_text()
            )
            client.wait(running["job"]["id"], timeout=60.0)
            client.wait(queued["job"]["id"], timeout=60.0)

    def test_client_errors_are_serve_error_with_retry_after(self):
        with serve(max_queue_depth=0) as app:
            client = ServeClient(port=app.port)
            with pytest.raises(ServeError) as excinfo:
                client.submit(dict(SPEC, steps=600))
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None


class TestClientCap:
    def test_per_client_inflight_cap_is_429(self):
        with serve(max_inflight_per_client=1) as app:
            client = ServeClient(port=app.port)
            first = client.submit(
                dict(SPEC, steps=600, client="alice")
            )
            status, headers, body = raw_post_jobs(
                app.port, dict(SPEC, seed=5, steps=600, client="alice")
            )
            assert status == 429
            assert body["reason"] == "client_limit"
            assert "Retry-After" in headers
            # A different client is unaffected by alice's cap.
            other = client.submit(dict(SPEC, seed=6, client="bob"))
            client.wait(first["job"]["id"], timeout=60.0)
            client.wait(other["job"]["id"], timeout=60.0)
            # Terminal jobs release the cap.
            again = client.submit(
                dict(SPEC, seed=7, client="alice")
            )
            client.wait(again["job"]["id"], timeout=60.0)

    def test_cache_hits_always_admitted(self):
        with serve(max_queue_depth=1, max_inflight_per_client=1) as app:
            client = ServeClient(port=app.port)
            cold = client.submit(SPEC)
            client.wait(cold["job"]["id"], timeout=60.0)
            # Saturate the cold path...
            hog = client.submit(dict(SPEC, seed=8, steps=600))
            # ...hits and joins still go through (they cost nothing).
            hit = client.submit(SPEC)
            assert hit["cache"] == "hit"
            join = client.submit(dict(SPEC, seed=8, steps=600))
            assert join["cache"] == "join"
            client.wait(hog["job"]["id"], timeout=60.0)


class TestReadiness:
    def test_draining_flunks_readiness_and_submits(self):
        with serve() as app:
            client = ServeClient(port=app.port)
            assert client.readyz() == {"ready": True}
            assert client.healthz()["status"] == "serving"
            # Flip the admission flag alone (full drain would stop the
            # empty server before we could probe it).
            app._draining = True
            with pytest.raises(ServeError) as excinfo:
                client.readyz()
            assert excinfo.value.status == 503
            assert excinfo.value.payload["reason"] == "draining"
            with pytest.raises(ServeError) as excinfo:
                client.submit(SPEC)
            assert excinfo.value.status == 503
            assert excinfo.value.payload["reason"] == "draining"
            # Liveness stays green: a draining server must not be killed.
            health = client.healthz()
            assert health["ok"] is True
            assert health["status"] == "draining"
            app._draining = False
            assert client.readyz() == {"ready": True}

    def test_replay_failure_flunks_readiness(self, tmp_path):
        from repro.serve.journal import JobJournal, frame_record, \
            segment_path

        # Corrupt a NON-final segment: replay must refuse, serve empty.
        journal = JobJournal(str(tmp_path))
        journal.append({"type": "submit", "job": "a", "seq": 0, "spec": {}})
        journal.close()
        with open(segment_path(str(tmp_path), 1), "wb") as fh:
            fh.write(frame_record({"type": "complete", "job": "a"}))
        with open(segment_path(str(tmp_path), 0), "r+b") as fh:
            fh.truncate(3)
        with pytest.warns(RuntimeWarning, match="journal replay failed"):
            with serve(journal_dir=str(tmp_path)) as app:
                client = ServeClient(port=app.port)
                with pytest.raises(ServeError) as excinfo:
                    client.readyz()
                assert excinfo.value.status == 503
                payload = excinfo.value.payload
                assert payload["reason"] == "journal_replay_failed"
                assert client.healthz()["ok"] is True


class TestSseResume:
    def test_last_event_id_replays_suffix(self):
        with serve() as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            client.wait(resp["job"]["id"], timeout=60.0)
            job_id = resp["job"]["id"]

            def fetch(last_id=None):
                conn = http.client.HTTPConnection(
                    "127.0.0.1", app.port, timeout=30
                )
                try:
                    headers = {}
                    if last_id is not None:
                        headers["Last-Event-ID"] = str(last_id)
                    conn.request(
                        "GET", f"/jobs/{job_id}/events", headers=headers
                    )
                    resp_ = conn.getresponse()
                    state: dict = {}
                    frames = []
                    for name, data in parse_sse(resp_, state=state):
                        frames.append((state.get("id"), name, data))
                    return frames
                finally:
                    conn.close()

            full = fetch()
            assert len(full) >= 3  # state + steps + done
            ids = [i for i, _, _ in full]
            assert ids == sorted(ids)
            cut = ids[len(ids) // 2]
            resumed = fetch(last_id=cut)
            assert resumed == full[ids.index(cut) + 1:]
            # Resuming past the end yields an immediately-closed stream.
            assert fetch(last_id=ids[-1]) == []

    def test_iter_events_reconnect_tracks_ids(self):
        with serve() as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            names = [n for n, _ in client.iter_events(resp["job"]["id"])]
            assert names[-1] == "done"
            assert names.count("done") == 1
