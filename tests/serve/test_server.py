"""End-to-end serve tests over real HTTP (ephemeral-port server).

The load-bearing claims: a served result is bitwise identical to the
in-process run, a cache hit is bitwise identical to the cold run that
populated it, and a preempted-and-resumed job finishes bitwise identical
to one that was never preempted.
"""

import json
import time

import pytest

from repro.core.model import SequentialSimCov
from repro.serve import BackgroundServer, ServeApp, ServeClient, ServeError
from repro.serve.jobs import JobSpec, stats_rows


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def serve(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("max_workers", 2)
    return BackgroundServer(ServeApp(**kwargs))


SPEC = {"config": "small_2d", "steps": 25, "seed": 4, "backend": "sequential"}


def reference_rows(spec_json):
    """The in-process ground truth for a solo sequential spec."""
    spec = JobSpec.from_json(
        {k: v for k, v in spec_json.items() if k != "backend"}
    )
    params, steps = spec.resolve_params()
    sim = SequentialSimCov(params, seed=spec.seed)
    sim.run(steps)
    return stats_rows(sim.series)


class TestSubmitAndResult:
    def test_served_result_bitwise_matches_inprocess(self):
        with serve() as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            assert resp["cache"] == "miss"
            final = client.wait(resp["job"]["id"])
            assert final["state"] == "done"
            rows = client.result(resp["job"]["id"])["result"]["rows"]
        assert canonical(rows) == canonical(reference_rows(SPEC))

    def test_cache_hit_bitwise_identical(self):
        with serve() as app:
            client = ServeClient(port=app.port)
            cold = client.submit(SPEC)
            client.wait(cold["job"]["id"])
            cold_result = client.result(cold["job"]["id"])["result"]
            warm = client.submit(SPEC)
            assert warm["cache"] == "hit"
            assert warm["job"]["state"] == "done"  # instantly
            warm_result = client.result(warm["job"]["id"])["result"]
            assert canonical(warm_result) == canonical(cold_result)
            assert client.metrics()["cache_hits"] == 1

    def test_inflight_duplicates_join(self):
        with serve(max_workers=1) as app:
            client = ServeClient(port=app.port)
            long_spec = dict(SPEC, steps=300)
            first = client.submit(long_spec)
            second = client.submit(long_spec)
            assert second["cache"] == "join"
            assert second["job"]["id"] == first["job"]["id"]
            assert second["job"]["attached"] == 2
            client.wait(first["job"]["id"])

    def test_bad_spec_is_400(self):
        with serve() as app:
            client = ServeClient(port=app.port)
            with pytest.raises(ServeError) as exc:
                client.submit({"backend": "quantum"})
            assert exc.value.status == 400
            with pytest.raises(ServeError) as exc:
                client.submit({"stepz": 5})
            assert exc.value.status == 400

    def test_result_conflict_while_running(self):
        with serve(max_workers=1) as app:
            client = ServeClient(port=app.port)
            resp = client.submit(dict(SPEC, steps=400))
            with pytest.raises(ServeError) as exc:
                client.result(resp["job"]["id"])
            assert exc.value.status == 409
            client.wait(resp["job"]["id"])


class TestEvents:
    def test_sse_stream_replays_and_completes(self):
        with serve() as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            client.wait(resp["job"]["id"])
            # Subscribe after the fact: full replay, then stream end.
            events = list(client.iter_events(resp["job"]["id"]))
        names = [name for name, _ in events]
        assert names[0] == "state"
        assert names[-1] == "done"
        steps = [data for name, data in events if name == "step"]
        assert len(steps) == SPEC["steps"]
        assert steps[0]["steps_done"] == 1
        assert steps[-1]["steps_done"] == SPEC["steps"]
        assert any(name == "telemetry" for name in names)

    def test_live_subscription_sees_steps(self):
        with serve(max_workers=1) as app:
            client = ServeClient(port=app.port)
            resp = client.submit(dict(SPEC, steps=120))
            seen = 0
            for name, _data in client.iter_events(resp["job"]["id"]):
                if name == "step":
                    seen += 1
            assert seen == 120


class TestPreemption:
    def test_high_priority_preempts_and_resume_is_bitwise(self):
        low_spec = dict(SPEC, steps=250, seed=7, priority=0)
        with serve(max_workers=1) as app:
            client = ServeClient(port=app.port)
            low = client.submit(low_spec)
            deadline = time.monotonic() + 10
            while client.status(low["job"]["id"])["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            high = client.submit(
                dict(SPEC, steps=10, seed=1, priority=5, client="urgent")
            )
            high_final = client.wait(high["job"]["id"])
            low_final = client.wait(low["job"]["id"])
            assert high_final["state"] == "done"
            assert low_final["state"] == "done"
            assert low_final["preemptions"] >= 1
            low_rows = client.result(low["job"]["id"])["result"]["rows"]
            metrics = client.metrics()
            assert metrics["preemptions"] >= 1
            assert metrics["resumes"] >= 1
        assert canonical(low_rows) == canonical(reference_rows(low_spec))

    def test_equal_priority_never_preempts(self):
        with serve(max_workers=1) as app:
            client = ServeClient(port=app.port)
            a = client.submit(dict(SPEC, steps=150, seed=2))
            b = client.submit(dict(SPEC, steps=5, seed=3))
            client.wait(a["job"]["id"])
            client.wait(b["job"]["id"])
            assert client.status(a["job"]["id"])["preemptions"] == 0


class TestCancel:
    def test_cancel_queued_job(self):
        with serve(max_workers=1) as app:
            client = ServeClient(port=app.port)
            running = client.submit(dict(SPEC, steps=200, seed=5))
            queued = client.submit(dict(SPEC, steps=200, seed=6))
            resp = client.cancel(queued["job"]["id"])
            assert resp["state"] == "cancelled"
            client.wait(running["job"]["id"])
            names = [n for n, _ in client.iter_events(queued["job"]["id"])]
            assert names[-1] == "done"

    def test_cancel_running_job(self):
        with serve(max_workers=1) as app:
            client = ServeClient(port=app.port)
            resp = client.submit(dict(SPEC, steps=2000, seed=5))
            deadline = time.monotonic() + 10
            while client.status(resp["job"]["id"])["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            client.cancel(resp["job"]["id"])
            final = client.wait(resp["job"]["id"])
            assert final["state"] == "cancelled"
            assert final["steps_done"] < 2000

    def test_cancel_done_job_conflicts(self):
        with serve() as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            client.wait(resp["job"]["id"])
            with pytest.raises(ServeError) as exc:
                client.cancel(resp["job"]["id"])
            assert exc.value.status == 409


class TestEnsemble:
    def test_ensemble_members_bitwise_match_solo(self):
        spec = {"config": "small_2d", "steps": 12, "seed": 3,
                "backend": "ensemble", "ensemble": 3}
        with serve() as app:
            client = ServeClient(port=app.port)
            resp = client.submit(spec)
            client.wait(resp["job"]["id"])
            result = client.result(resp["job"]["id"])["result"]
        assert result["kind"] == "ensemble"
        assert result["seeds"] == [3, 4, 5]
        for seed, rows in zip(result["seeds"], result["members"]):
            solo = reference_rows(
                {"config": "small_2d", "steps": 12, "seed": seed}
            )
            assert canonical(rows) == canonical(solo)


class TestDiskCache:
    def test_cache_survives_server_restart(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with serve(cache_dir=cache_dir) as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            client.wait(resp["job"]["id"])
            cold = client.result(resp["job"]["id"])["result"]
        with serve(cache_dir=cache_dir) as app:
            client = ServeClient(port=app.port)
            warm = client.submit(SPEC)
            assert warm["cache"] == "hit"
            assert canonical(
                client.result(warm["job"]["id"])["result"]
            ) == canonical(cold)
