"""Fair-share queue ordering and the preemption decision."""

from repro.core.params import SimCovParams
from repro.serve.jobs import Job, JobSpec
from repro.serve.scheduler import FairShareQueue, Scheduler, job_cost

PARAMS = SimCovParams.fast_test(dim=(8, 8))


def make_job(job_id, *, priority=0, client="a", backend="sequential",
             ensemble=None, steps=10):
    spec = JobSpec(
        backend=backend, priority=priority, client=client, ensemble=ensemble
    )
    return Job(
        id=job_id, spec=spec, params=PARAMS, steps=steps,
        cache_key=f"key-{job_id}",
    )


class TestFairShareQueue:
    def test_priority_class_first(self):
        q = FairShareQueue()
        low = make_job("low", priority=0)
        high = make_job("high", priority=5)
        q.push(low)
        q.push(high)
        assert q.pop_next() is high
        assert q.pop_next() is low

    def test_fair_share_within_class(self):
        q = FairShareQueue()
        q.charge("greedy", 100.0)
        first = make_job("g1", client="greedy")
        second = make_job("n1", client="newcomer")
        q.push(first)
        q.push(second)
        # Newcomer has spent nothing: it wins despite arriving later.
        assert q.pop_next() is second

    def test_fifo_tiebreak(self):
        q = FairShareQueue()
        a, b = make_job("a"), make_job("b")
        q.push(a)
        q.push(b)
        assert q.pop_next() is a

    def test_preempted_job_keeps_seq(self):
        q = FairShareQueue()
        old = make_job("old")
        new = make_job("new")
        q.push(old)
        assert q.pop_next() is old
        # old was preempted and requeued; a newer arrival of equal
        # standing must not overtake it.
        q.push(new)
        q.push(old)
        assert q.pop_next() is old

    def test_charge_accumulates(self):
        q = FairShareQueue()
        q.charge("c", 1.5)
        q.charge("c", 2.5)
        assert q.spent["c"] == 4.0


class TestScheduler:
    def test_dispatch_respects_slots(self):
        s = Scheduler(max_workers=1)
        s.submit(make_job("a"))
        s.submit(make_job("b"))
        assert s.next_dispatch().id == "a"
        assert s.next_dispatch() is None  # slot full
        assert len(s.queue) == 1

    def test_release_frees_slot(self):
        s = Scheduler(max_workers=1)
        s.submit(make_job("a"))
        job = s.next_dispatch()
        s.release(job)
        assert s.free_slots == 1

    def test_requeue_preserves_job(self):
        s = Scheduler(max_workers=1)
        s.submit(make_job("a"))
        job = s.next_dispatch()
        s.release(job, requeue=True)
        assert job.id in s.queue

    def test_no_victim_when_slot_free(self):
        s = Scheduler(max_workers=2)
        s.submit(make_job("running", priority=0))
        s.next_dispatch()
        assert s.pick_victim(make_job("urgent", priority=9)) is None

    def test_victim_needs_lower_class(self):
        s = Scheduler(max_workers=1)
        s.submit(make_job("running", priority=3))
        running = s.next_dispatch()
        # Same class never preempts (no fair-share thrash)...
        assert s.pick_victim(make_job("peer", priority=3)) is None
        # ...a higher class does.
        assert s.pick_victim(make_job("urgent", priority=4)) is running

    def test_ensemble_jobs_not_preemptible(self):
        s = Scheduler(max_workers=1)
        s.submit(make_job("batch", priority=0, backend="ensemble", ensemble=4))
        s.next_dispatch()
        assert s.pick_victim(make_job("urgent", priority=9)) is None

    def test_weakest_victim_chosen(self):
        s = Scheduler(max_workers=2)
        s.queue.charge("spender", 50.0)
        s.submit(make_job("v1", priority=1, client="frugal"))
        s.submit(make_job("v2", priority=1, client="spender"))
        s.next_dispatch()
        s.next_dispatch()
        victim = s.pick_victim(make_job("urgent", priority=5))
        assert victim.id == "v2"  # the bigger spender yields first


def test_job_cost_scales_with_work():
    solo = make_job("solo", steps=10)
    assert job_cost(solo) == 10 * PARAMS.num_voxels / 1e6
    batch = make_job("batch", backend="ensemble", ensemble=4, steps=10)
    assert job_cost(batch) == 4 * job_cost(solo)
    assert job_cost(solo, steps=5) == job_cost(solo) / 2
