"""/metrics, /metrics.json and /healthz over real HTTP.

The Prometheus exposition is parsed line by line (a malformed sample is
exactly the failure a scraper would hit), and the health payload must
carry live scheduler/worker-pool state, not a bare 200.
"""

import http.client

import pytest

from repro.obs.prometheus import CONTENT_TYPE
from repro.obs.registry import MetricsRegistry, set_registry
from repro.serve import BackgroundServer, ServeApp, ServeClient

SPEC = {"config": "small_2d", "steps": 10, "seed": 4, "backend": "sequential"}


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Exact-count assertions need a registry other tests haven't fed —
    the server binds the global registry at construction time."""
    prev = set_registry(MetricsRegistry())
    yield
    set_registry(prev)


def serve(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("max_workers", 2)
    return BackgroundServer(ServeApp(**kwargs))


def parse_prometheus(text):
    """{name_or_series: value} for every sample line; asserts shape."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            continue
        series, _, value = line.rpartition(" ")
        assert series, f"malformed sample line: {line!r}"
        samples[series] = float(value)
    return samples


class TestMetricsEndpoint:
    def test_prometheus_text_after_traffic(self):
        with serve() as app:
            client = ServeClient(port=app.port)
            first = client.submit(SPEC)
            client.wait(first["job"]["id"])
            warm = client.submit(SPEC)
            assert warm["cache"] == "hit"
            samples = parse_prometheus(client.metrics_text())
        assert samples["simcov_serve_submitted_total"] == 2
        assert samples["simcov_serve_cache_hits_total"] == 1
        assert samples["simcov_serve_cache_misses_total"] == 1
        assert samples["simcov_serve_completed_total"] == 1
        assert samples["simcov_serve_max_workers"] == 2
        assert samples["simcov_serve_queue_depth"] == 0
        assert samples["simcov_serve_cache_entries"] == 1
        # The latency histogram: 2 observations (cold wait + hit at 0s),
        # with the full cumulative ladder present.
        assert (
            samples["simcov_serve_submit_to_first_event_seconds_count"] == 2
        )
        assert (
            samples['simcov_serve_submit_to_first_event_seconds_bucket'
                    '{le="+Inf"}'] == 2
        )

    def test_content_type_is_prometheus(self):
        with serve() as app:
            conn = http.client.HTTPConnection("127.0.0.1", app.port,
                                              timeout=10)
            try:
                conn.request("GET", "/metrics")
                resp = conn.getresponse()
                assert resp.status == 200
                assert resp.getheader("Content-Type") == CONTENT_TYPE
                resp.read()
            finally:
                conn.close()

    def test_engine_metrics_share_the_exposition(self):
        """Jobs run in-process, so engine families (steps, phases) land
        in the same scrape as the serve families."""
        with serve() as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            client.wait(resp["job"]["id"])
            text = client.metrics_text()
        assert "simcov_steps_total" in text
        assert 'simcov_phase_seconds_bucket{phase="diffuse"' in text

    def test_json_metrics_still_served(self):
        with serve() as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            client.wait(resp["job"]["id"])
            payload = client.metrics()
        assert payload["submitted"] == 1
        assert payload["completed"] == 1
        assert "wait_p99_seconds" in payload


class TestHealthz:
    def test_health_payload_carries_pool_state(self):
        with serve() as app:
            client = ServeClient(port=app.port)
            health = client.healthz()
            assert health["ok"] is True
            sched = health["scheduler"]
            assert sched["max_workers"] == 2
            assert sched["busy_workers"] == 0
            assert sched["queue_depth"] == 0
            assert health["uptime_seconds"] >= 0.0
            assert health["jobs"] == {}

            resp = client.submit(SPEC)
            client.wait(resp["job"]["id"])
            health = client.healthz()
            assert health["jobs"] == {"done": 1}


class TestPreemptionCounters:
    def test_preemption_visible_in_scrape(self):
        with serve(max_workers=1) as app:
            client = ServeClient(port=app.port)
            low = client.submit(dict(SPEC, steps=400, priority=0))
            high = client.submit(
                dict(SPEC, steps=10, seed=9, priority=9)
            )
            client.wait(high["job"]["id"])
            client.wait(low["job"]["id"], timeout=180.0)
            samples = parse_prometheus(client.metrics_text())
        assert samples["simcov_serve_preemptions_total"] >= 1
        assert samples["simcov_serve_resumes_total"] >= 1


@pytest.mark.parametrize("fmt,first_char", [("jsonl", "{"), ("chrome", "{")])
def test_trace_format_plumbed(tmp_path, fmt, first_char):
    path = tmp_path / f"serve-trace.{fmt}"
    with serve(trace_path=str(path), trace_format=fmt) as app:
        client = ServeClient(port=app.port)
        resp = client.submit(SPEC)
        client.wait(resp["job"]["id"])
    text = path.read_text()
    assert text.lstrip().startswith(first_char)
    if fmt == "jsonl":
        import json

        kinds = [json.loads(ln)["kind"] for ln in text.splitlines() if ln]
        assert kinds[0] == "meta"
        assert "metrics" in kinds  # snapshot sink flushed on close
