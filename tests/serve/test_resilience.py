"""Retry-with-backoff behavior of the serve tier.

The load-bearing claims: an injected worker crash is retried under the
bounded-backoff policy and the retried result is **bitwise identical**
to a fault-free run; a crash that keeps recurring exhausts the policy
and fails with a full incident log in ``/jobs/{id}``; permanent errors
fail immediately without burning retries.
"""

import json

import pytest

from repro.core.model import SequentialSimCov
from repro.resilience import (
    PERMANENT,
    RETRYABLE,
    JobIncident,
    PermanentError,
    RestartPolicy,
    classify_exception,
)
from repro.serve import BackgroundServer, ServeApp, ServeClient
from repro.serve.faults import InjectedWorkerCrash, ServeFaultSpec
from repro.serve.jobs import JobSpec, stats_rows

SPEC = {"config": "small_2d", "steps": 25, "seed": 4, "backend": "sequential"}


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def reference_rows(spec_json):
    spec = JobSpec.from_json(
        {k: v for k, v in spec_json.items() if k != "backend"}
    )
    params, steps = spec.resolve_params()
    sim = SequentialSimCov(params, seed=spec.seed)
    sim.run(steps)
    return stats_rows(sim.series)


def serve(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault(
        "retry_policy", RestartPolicy(max_restarts=3, backoff=0.01)
    )
    return BackgroundServer(ServeApp(**kwargs))


class TestClassification:
    def test_runtime_errors_are_retryable(self):
        assert classify_exception(RuntimeError("transient")) == RETRYABLE
        assert classify_exception(OSError("io")) == RETRYABLE
        assert classify_exception(InjectedWorkerCrash("chaos")) == RETRYABLE

    def test_programming_errors_are_permanent(self):
        for err in (
            ValueError("bad"), TypeError("bad"), KeyError("k"),
            ZeroDivisionError(), AssertionError(), NotImplementedError(),
        ):
            assert classify_exception(err) == PERMANENT

    def test_permanent_marker_wins_over_runtime_base(self):
        class Fatal(PermanentError):
            pass

        assert issubclass(Fatal, RuntimeError)
        assert classify_exception(Fatal("no point retrying")) == PERMANENT

    def test_checkpoint_corruption_is_permanent(self):
        from repro.io.checkpoint import CheckpointCorruptError

        assert classify_exception(CheckpointCorruptError("crc")) == PERMANENT

    def test_backoff_schedule_is_bounded_exponential(self):
        policy = RestartPolicy(max_restarts=5, backoff=0.1,
                               backoff_factor=2.0)
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.4)


class TestRetrySuccess:
    def test_injected_crash_retried_bitwise_identical(self):
        fault = ServeFaultSpec(job=0, step=10, mode="worker_crash")
        with serve(fault=fault) as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            final = client.wait(resp["job"]["id"])
            assert final["state"] == "done"
            # Exactly one incident: the crash, retried once, then clean.
            assert final["attempts"] == 2
            assert len(final["incidents"]) == 1
            incident = final["incidents"][0]
            assert incident["error_type"] == "InjectedWorkerCrash"
            assert incident["classification"] == RETRYABLE
            rows = client.result(resp["job"]["id"])["result"]["rows"]
            metrics = client.metrics()
        assert fault.fired == 1
        assert metrics["retries"] == 1
        assert metrics["failed"] == 0
        assert canonical(rows) == canonical(reference_rows(SPEC))

    def test_retrying_state_visible_in_stream(self):
        fault = ServeFaultSpec(job=0, step=5, mode="worker_crash")
        with serve(
            fault=fault,
            retry_policy=RestartPolicy(max_restarts=3, backoff=0.2),
        ) as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            names = [n for n, _ in client.iter_events(resp["job"]["id"])]
        assert "retrying" in names
        assert names[-1] == "done"


class TestRetryExhaustion:
    def test_recurring_crash_exhausts_policy(self):
        fault = ServeFaultSpec(job=0, step=5, mode="worker_crash",
                               repeat=99)
        with serve(
            fault=fault,
            retry_policy=RestartPolicy(max_restarts=2, backoff=0.01),
        ) as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            final = client.wait(resp["job"]["id"])
            metrics = client.metrics()
        assert final["state"] == "failed"
        assert "RestartsExhaustedError" in final["error"]
        assert "incident log:" in final["error"]
        # 3 attempts = 1 initial + 2 restarts, each leaving an incident.
        assert len(final["incidents"]) == 3
        assert [i["index"] for i in final["incidents"]] == [1, 2, 3]
        assert metrics["retries"] == 2
        assert metrics["failed"] == 1

    def test_permanent_error_fails_without_retries(self, monkeypatch):
        import repro.serve.runner as runner_mod

        def bad_build(job, tracer=None):
            raise ValueError("injected permanent misconfiguration")

        with serve() as app:
            monkeypatch.setattr(runner_mod, "build_sim", bad_build)
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            final = client.wait(resp["job"]["id"])
            metrics = client.metrics()
        assert final["state"] == "failed"
        assert "permanent failure, not retried" in final["error"]
        assert len(final["incidents"]) == 1
        assert final["incidents"][0]["classification"] == PERMANENT
        assert metrics["retries"] == 0


class TestIncidentModel:
    def test_incident_round_trips_through_json(self):
        incident = JobIncident(
            index=1, step=12, error_type="InjectedWorkerCrash",
            message="chaos", classification=RETRYABLE,
            restored_step=8, steps_replayed=4, backoff_seconds=0.05,
        )
        raw = incident.to_json()
        assert JobIncident(**raw) == incident
        assert "step 12" in incident.describe()
