"""Crash recovery: kill the server mid-job, restart, finish bitwise.

The strongest claim of DESIGN.md §4g, tested against a *real* server
process dying with SIGKILL semantics (``os._exit``, no cleanup): the
restarted server replays the journal, finishes every incomplete job,
and the results are bitwise identical to a run that was never
interrupted.
"""

import json
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.core.model import SequentialSimCov
from repro.serve import BackgroundServer, ServeApp, ServeClient
from repro.serve.faults import KILL_EXIT_STATUS
from repro.serve.jobs import JobSpec, stats_rows

SPEC = {"dim": [48, 48], "steps": 300, "seed": 7, "backend": "sequential"}


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def reference_rows(spec_json):
    spec = JobSpec.from_json(
        {k: v for k, v in spec_json.items() if k != "backend"}
    )
    params, steps = spec.resolve_params()
    sim = SequentialSimCov(params, seed=spec.seed)
    sim.run(steps)
    return stats_rows(sim.series)


def spawn_server(journal_dir, *extra):
    """A real CLI server process on an ephemeral port; returns
    ``(proc, port)`` once it prints its bound address."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.cli", "serve",
            "--port", "0", "--workers", "1",
            "--journal-dir", str(journal_dir),
            "--retry-backoff", "0.01",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "serving on http://" in line:
            break
        if proc.poll() is not None:
            raise RuntimeError(
                f"server died during startup: {proc.stdout.read()}"
            )
    match = re.search(r"http://[\d.]+:(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"no port line from server, got {line!r}")
    return proc, int(match.group(1))


@pytest.mark.slow
class TestServerKillRecovery:
    def test_server_kill_mid_job_recovers_bitwise(self, tmp_path):
        journal_dir = tmp_path / "journal"
        # The chaos fault SIGKILLs the server when job 0 reaches step 150.
        proc, port = spawn_server(
            journal_dir, "--inject-serve-fault", "0:150:server_kill"
        )
        try:
            client = ServeClient(port=port)
            resp = client.submit(SPEC)
            job_id = resp["job"]["id"]
            assert proc.wait(timeout=120) == KILL_EXIT_STATUS
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # Restart on the same journal: the job must come back by itself,
        # same id, and finish bitwise-identically.
        proc, port = spawn_server(journal_dir)
        try:
            client = ServeClient(port=port)
            final = client.wait(job_id, timeout=120.0)
            assert final["state"] == "done"
            rows = client.result(job_id)["result"]["rows"]
            metrics = client.metrics()
            assert metrics["replayed_jobs"] == 1
            assert client.readyz() == {"ready": True}
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0  # graceful drain exits 0
        assert canonical(rows) == canonical(reference_rows(SPEC))

    def test_journal_torn_by_crash_recovers(self, tmp_path):
        journal_dir = tmp_path / "journal"
        # journal_torn writes a partial frame, then dies like SIGKILL —
        # the restart must truncate the torn tail, not crash.
        proc, port = spawn_server(
            journal_dir, "--inject-serve-fault", "0:150:journal_torn"
        )
        try:
            client = ServeClient(port=port)
            resp = client.submit(SPEC)
            job_id = resp["job"]["id"]
            assert proc.wait(timeout=120) == KILL_EXIT_STATUS
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        proc, port = spawn_server(journal_dir)
        try:
            client = ServeClient(port=port)
            assert client.readyz() == {"ready": True}  # replay succeeded
            final = client.wait(job_id, timeout=120.0)
            assert final["state"] == "done"
            rows = client.result(job_id)["result"]["rows"]
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        assert canonical(rows) == canonical(reference_rows(SPEC))


class TestDrainResume:
    def test_drain_checkpoints_and_restart_resumes(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        ref = reference_rows(SPEC)
        with BackgroundServer(
            ServeApp(port=0, max_workers=1, journal_dir=journal_dir)
        ) as app:
            client = ServeClient(port=app.port)
            resp = client.submit(SPEC)
            job_id = resp["job"]["id"]
            # Let it make progress, then drain (the SIGTERM path).
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if client.status(job_id)["steps_done"] >= 20:
                    break
                time.sleep(0.01)
            app.drain()
        # BackgroundServer.__exit__ joined the loop thread: the journal
        # now holds submit/start/preempt records and a disk checkpoint.
        with BackgroundServer(
            ServeApp(port=0, max_workers=1, journal_dir=journal_dir)
        ) as app:
            client = ServeClient(port=app.port)
            summary = client.status(job_id)
            assert summary["state"] in ("queued", "running", "done")
            final = client.wait(job_id, timeout=120.0)
            assert final["state"] == "done"
            rows = client.result(job_id)["result"]["rows"]
            metrics = client.metrics()
            assert metrics["replayed_jobs"] == 1
            # It resumed from the drain checkpoint, not from step 0.
            assert metrics["resumes"] >= 1
        assert canonical(rows) == canonical(ref)

    def test_completed_jobs_survive_restart_via_disk_cache(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        spec = dict(SPEC, steps=25)
        with BackgroundServer(
            ServeApp(port=0, journal_dir=journal_dir)
        ) as app:
            client = ServeClient(port=app.port)
            resp = client.submit(spec)
            job_id = resp["job"]["id"]
            client.wait(job_id, timeout=60.0)
            cold = client.result(job_id)["result"]
        with BackgroundServer(
            ServeApp(port=0, journal_dir=journal_dir)
        ) as app:
            client = ServeClient(port=app.port)
            # The job is still addressable, already done, result intact.
            summary = client.status(job_id)
            assert summary["state"] == "done"
            warm = client.result(job_id)["result"]
            assert client.metrics()["replayed_jobs"] == 0
        assert canonical(warm) == canonical(cold)
