"""Tests for the diffusion stencil: conservation, symmetry, equivalences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.diffusion.stencil import (
    decay_field,
    diffuse_global,
    diffuse_padded,
    diffuse_region,
    mirror_out_of_domain,
    mirror_pad,
)
from repro.grid.box import Box
from repro.grid.decomposition import Decomposition
from repro.grid.halo import HaloExchanger, MergeMode
from repro.grid.spec import GridSpec


class TestBasics:
    def test_point_source_spreads_symmetrically(self):
        f = np.zeros((11, 11))
        f[5, 5] = 100.0
        out = diffuse_global(f, 0.4)
        assert out[5, 5] < 100.0
        assert out[4, 5] == out[6, 5] == out[5, 4] == out[5, 6] > 0
        assert out[4, 4] == 0.0  # diagonal not in VN stencil

    def test_mass_conserved(self):
        rng = np.random.default_rng(0)
        f = rng.random((20, 20)) * 10
        out = diffuse_global(f, 0.8)
        assert np.isclose(out.sum(), f.sum(), rtol=1e-12)

    def test_mass_conserved_3d(self):
        rng = np.random.default_rng(1)
        f = rng.random((8, 8, 8))
        out = diffuse_global(f, 0.5)
        assert np.isclose(out.sum(), f.sum(), rtol=1e-12)

    def test_nonnegativity(self):
        rng = np.random.default_rng(2)
        f = rng.random((16, 16))
        out = f
        for _ in range(50):
            out = diffuse_global(out, 1.0)
        assert out.min() >= 0

    def test_uniform_field_fixed_point(self):
        f = np.full((9, 9), 3.14)
        np.testing.assert_allclose(diffuse_global(f, 0.7), f)

    def test_converges_to_uniform(self):
        f = np.zeros((8, 8))
        f[0, 0] = 64.0
        out = f
        for _ in range(3000):
            out = diffuse_global(out, 0.5)
        np.testing.assert_allclose(out, 1.0, atol=1e-6)

    def test_zero_rate_identity(self):
        rng = np.random.default_rng(3)
        f = rng.random((6, 6))
        np.testing.assert_array_equal(diffuse_global(f, 0.0), f)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            diffuse_global(np.zeros((4, 4)), 1.5)
        with pytest.raises(ValueError):
            diffuse_global(np.zeros((4, 4)), -0.1)

    def test_region_requires_distinct_buffers(self):
        f = np.zeros((6, 6))
        with pytest.raises(ValueError):
            diffuse_region(f, f, (slice(1, 5), slice(1, 5)), 0.5)


class TestDecay:
    def test_exponential(self):
        f = np.full((4, 4), 10.0)
        decay_field(f, 0.1)
        np.testing.assert_allclose(f, 9.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            decay_field(np.zeros(3), 2.0)


class TestDistributedEquivalence:
    """Halo exchange + per-rank padded update == global update, exactly."""

    @pytest.mark.parametrize("nranks", [1, 2, 4, 6])
    def test_subdomain_matches_global(self, nranks):
        spec = GridSpec((24, 18))
        decomp = Decomposition.blocks(spec, nranks)
        ex = HaloExchanger(decomp)
        rng = np.random.default_rng(42)
        g = rng.random(spec.shape)
        expected = diffuse_global(g, 0.6)
        arrays = ex.scatter_global(g.astype(np.float64))
        ex.exchange(arrays, MergeMode.REPLACE)
        results = []
        for rank in range(nranks):
            arr = arrays[rank]
            mirror_out_of_domain(arr, decomp.boxes[rank], spec.domain)
            results.append(arr)
        locals_new = [diffuse_padded(a, 0.6) for a in results]
        # Reassemble and compare.
        out = np.zeros(spec.shape)
        for rank in range(nranks):
            out[decomp.boxes[rank].slices_from((0, 0))] = locals_new[rank]
        np.testing.assert_allclose(out, expected, rtol=1e-13)

    def test_region_update_matches_padded(self):
        """Tile-wise application covers the same result as one padded call."""
        rng = np.random.default_rng(7)
        padded = rng.random((14, 14))
        whole = diffuse_padded(padded, 0.3)
        dst = np.zeros_like(padded)
        # Apply over four quadrant tiles of the 12x12 interior.
        for si in (slice(1, 7), slice(7, 13)):
            for sj in (slice(1, 7), slice(7, 13)):
                diffuse_region(padded, dst, (si, sj), 0.3)
        np.testing.assert_allclose(dst[1:-1, 1:-1], whole, rtol=1e-14)


class TestMirrorOutOfDomain:
    def test_corner_rank_mirrors_two_sides(self):
        domain = Box((0, 0), (8, 8))
        owned = Box((0, 0), (4, 4))
        arr = np.zeros((6, 6))
        arr[1:-1, 1:-1] = np.arange(16).reshape(4, 4)
        mirror_out_of_domain(arr, owned, domain)
        np.testing.assert_array_equal(arr[0, 1:-1], arr[1, 1:-1])
        np.testing.assert_array_equal(arr[1:-1, 0], arr[1:-1, 1])
        # High sides face the interior: untouched.
        assert arr[-1, 1:-1].sum() == 0

    def test_interior_rank_untouched(self):
        domain = Box((0, 0), (12, 12))
        owned = Box((4, 4), (8, 8))
        arr = np.ones((6, 6))
        arr[0, :] = -5
        mirror_out_of_domain(arr, owned, domain)
        assert (arr[0, :] == -5).all()


class TestProperties:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        rate=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_conservation_property(self, seed, rate):
        f = np.random.default_rng(seed).random((10, 10))
        out = diffuse_global(f, rate)
        assert np.isclose(out.sum(), f.sum(), rtol=1e-10)
        assert out.min() >= -1e-15

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_maximum_principle(self, seed):
        """Diffusion never exceeds the initial extremes."""
        f = np.random.default_rng(seed).random((10, 10))
        out = diffuse_global(f, 1.0)
        assert out.max() <= f.max() + 1e-12
        assert out.min() >= f.min() - 1e-12
