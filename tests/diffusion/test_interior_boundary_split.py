"""The interior/boundary split behind communication overlap.

:func:`split_interior_boundary` carves a kernel region into a
stencil-safe core (computable before a halo pull lands) plus boundary
slabs (computed after).  Three contracts keep the overlap bitwise
invisible:

- the pieces tile the region exactly (disjoint + covering);
- a region too thin for a safe core reports ``interior=None`` (the
  caller falls back to the monolithic pass);
- running ``diffuse``/``intents`` interior-then-slabs produces results
  element-for-element identical to one monolithic call, in 2D and 3D.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import kernels
from repro.core.params import SimCovParams
from repro.core.state import EpiState, VoxelBlock
from repro.diffusion.stencil import diffuse_region, split_interior_boundary
from repro.grid.spec import GridSpec
from repro.rng.streams import VoxelRNG

GHOST = 1


def _region_strategy(ndim):
    """A padded shape plus a non-empty region inside its non-ghost cells."""

    @st.composite
    def strat(draw):
        shape, region = [], []
        for _ in range(ndim):
            n = draw(st.integers(min_value=2 * GHOST + 1, max_value=14))
            lo = draw(st.integers(min_value=GHOST, max_value=n - GHOST - 1))
            hi = draw(st.integers(min_value=lo + 1, max_value=n - GHOST))
            shape.append(n)
            region.append(slice(lo, hi))
        return tuple(shape), tuple(region)

    return strat()


@settings(max_examples=120, deadline=None)
@given(st.one_of(_region_strategy(2), _region_strategy(3)))
def test_split_tiles_region_exactly(case):
    """Interior + slabs are disjoint and cover the region — and nothing
    else.  When the interior is None the region is genuinely too thin
    for a stencil-safe core on some axis."""
    shape, region = case
    interior, slabs = split_interior_boundary(region, shape, GHOST)
    cover = np.zeros(shape, dtype=np.int64)
    if interior is None:
        # Thin case: some axis of the region misses the safe core.
        core = tuple(slice(2 * GHOST, n - 2 * GHOST) for n in shape)
        assert any(
            max(r.start, c.start) >= min(r.stop, c.stop)
            for r, c in zip(region, core)
        )
        return
    cover[interior] += 1
    for slab in slabs:
        cover[slab] += 1
    expected = np.zeros(shape, dtype=np.int64)
    expected[region] = 1
    np.testing.assert_array_equal(cover, expected)
    # The interior really is stencil-safe: its ±ghost neighborhood stays
    # inside the non-ghost cells.
    for s, n in zip(interior, shape):
        assert s.start - GHOST >= GHOST
        assert s.stop + GHOST <= n - GHOST


@pytest.mark.parametrize(
    "shape,region",
    [
        # Full interiors, 2D and 3D.
        ((10, 12), (slice(1, 9), slice(1, 11))),
        ((6, 7, 8), (slice(1, 5), slice(1, 6), slice(1, 7))),
        # Off-center sub-regions (gated active boxes).
        ((16, 16), (slice(3, 9), slice(5, 14))),
        ((8, 9, 7), (slice(2, 6), slice(1, 8), slice(3, 6))),
    ],
)
def test_diffuse_interior_then_boundary_matches_monolithic(shape, region):
    rng = np.random.default_rng(3)
    src = rng.uniform(0.0, 5.0, size=shape)
    mono = np.zeros(shape)
    split = np.zeros(shape)
    diffuse_region(src, mono, region, 0.37)
    interior, slabs = split_interior_boundary(region, shape, GHOST)
    assert interior is not None
    diffuse_region(src, split, interior, 0.37)
    for slab in slabs:
        diffuse_region(src, split, slab, 0.37)
    np.testing.assert_array_equal(split, mono)


@pytest.mark.parametrize(
    "shape,region",
    [
        # Blocks thinner than twice the halo width on some axis.
        ((2 * GHOST + 1, 12), (slice(1, 2), slice(1, 11))),
        ((4, 4, 9), (slice(1, 3), slice(1, 3), slice(2, 8))),
        # Region that misses the core despite a roomy block.
        ((16, 16), (slice(1, 2), slice(3, 12))),
    ],
)
def test_thin_blocks_report_no_interior(shape, region):
    interior, _ = split_interior_boundary(region, shape, GHOST)
    assert interior is None


def _seeded_block(dim, seed):
    """A block with random T cells, occupancy and epithelial states."""
    spec = GridSpec(dim)
    block = VoxelBlock(spec, spec.domain)
    rng = np.random.default_rng(seed)
    interior = block.interior
    tmask = rng.random(block.tcell[interior].shape) < 0.25
    block.tcell[interior][tmask] = 1
    block.tcell_tissue_time[interior][tmask] = rng.integers(
        1, 50, size=int(tmask.sum())
    )
    bound = tmask & (rng.random(tmask.shape) < 0.3)
    block.tcell_bound_time[interior][bound] = rng.integers(
        1, 5, size=int(bound.sum())
    )
    states = rng.choice(
        [int(EpiState.HEALTHY), int(EpiState.EXPRESSING), int(EpiState.DEAD)],
        p=[0.6, 0.3, 0.1],
        size=block.epi_state[interior].shape,
    )
    block.epi_state[interior][...] = states
    block.virions[interior][...] = rng.uniform(0, 2, size=states.shape)
    block.chemokine[interior][...] = rng.uniform(0, 1, size=states.shape)
    return block


@pytest.mark.parametrize("dim", [(14, 15), (7, 8, 6)])
@pytest.mark.parametrize("step", [0, 5])
def test_intents_interior_then_boundary_matches_monolithic(dim, step):
    """The overlapped intents pass is bitwise-identical to one monolithic
    call: draws are keyed by (seed, stream, step, gid) — not by execution
    order — and the bid scatter is an elementwise max."""
    params = SimCovParams.fast_test(dim=dim, num_infections=1)
    block = _seeded_block(dim, seed=step + 1)
    region = block.interior
    shape = block.virions.shape

    mono = kernels.IntentArrays(shape)
    kernels.tcell_intents(params, VoxelRNG(11), step, block, mono, region)

    split = kernels.IntentArrays(shape)
    interior, slabs = split_interior_boundary(region, shape, GHOST)
    assert interior is not None
    kernels.tcell_intents(params, VoxelRNG(11), step, block, split, interior)
    for slab in slabs:
        kernels.tcell_intents(params, VoxelRNG(11), step, block, split, slab)

    for name in (*kernels.IntentArrays.REPLACE_FIELDS,
                 *kernels.IntentArrays.MAX_FIELDS):
        np.testing.assert_array_equal(
            getattr(split, name), getattr(mono, name), err_msg=name
        )


@pytest.mark.parametrize("dim", [(14, 15), (7, 8, 6)])
def test_concentration_interior_then_boundary_matches_monolithic(dim):
    """The overlapped diffusion pass (interior into scratch before the
    ghosts land, boundary band after) commits bitwise the same fields as
    the monolithic update."""
    params = SimCovParams.fast_test(dim=dim, num_infections=1)

    def run(split: bool):
        block = _seeded_block(dim, seed=42)
        region = block.interior
        sv = np.zeros_like(block.virions)
        sc = np.zeros_like(block.chemokine)
        kernels.mirror_fields(block)
        if split:
            interior, slabs = split_interior_boundary(
                region, block.virions.shape, GHOST
            )
            assert interior is not None
            for piece in (interior, *slabs):
                kernels.concentration_update(params, block, piece, sv, sc)
        else:
            kernels.concentration_update(params, block, region, sv, sc)
        kernels.concentration_commit(params, block, [region], sv, sc, step=3)
        return block

    mono, overlapped = run(split=False), run(split=True)
    np.testing.assert_array_equal(overlapped.virions, mono.virions)
    np.testing.assert_array_equal(overlapped.chemokine, mono.chemokine)
