#!/usr/bin/env python
"""Regenerate the golden time-series fixtures.

Run from the repo root after an *intentional* model-behavior change::

    PYTHONPATH=src python tests/golden/regen_traces.py

and commit the rewritten ``trace_*.json`` alongside the change that
justifies it.  The fixtures pin the full per-step time series of the
canonical 2D and 3D configs; ``test_golden_traces.py`` asserts every
driver still reproduces them, so unintentional drift (from perf work
like activity gating) fails loudly instead of silently shifting the
science.
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

#: Canonical configs.  Small enough to run in seconds, long enough to
#: cover infection growth, T-cell arrival, movement conflicts and binds.
CONFIGS = {
    "trace_2d": {"dim": (32, 32), "num_infections": 2, "steps": 40, "seed": 42},
    "trace_3d": {"dim": (12, 12, 12), "num_infections": 1, "steps": 30, "seed": 7},
}


def build_trace(spec):
    params = SimCovParams.fast_test(
        dim=spec["dim"], num_infections=spec["num_infections"],
        num_steps=spec["steps"],
    )
    sim = SequentialSimCov(params, seed=spec["seed"])
    sim.run(spec["steps"])
    # json round-trips float64 exactly (repr-based), so "exactly equal to
    # the fixture" is the same contract as "bitwise equal to the run".
    return {"config": {k: list(v) if isinstance(v, tuple) else v
                       for k, v in spec.items()},
            "series": sim.series.to_rows()}


def main():
    for name, spec in CONFIGS.items():
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(build_trace(spec), indent=1) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
