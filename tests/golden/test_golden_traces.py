"""Golden-trace regression tests.

The committed ``trace_2d.json`` / ``trace_3d.json`` fixtures pin the
per-step time series of two canonical configurations (see
``regen_traces.py``).  All three drivers must reproduce them: the
sequential driver (gated and force-ungated) **exactly** — JSON round-
trips float64 exactly, so equality here is bitwise — and the PGAS / GPU
drivers exactly on integer statistics with the repo-standard 1e-12
relative tolerance on float reductions (their reduction order differs).

If one of these fails after an intentional model change, regenerate with
``PYTHONPATH=src python tests/golden/regen_traces.py`` and commit the
new fixtures with the change.  A perf-only PR must never need to.
"""

import json
import pathlib

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.simcov_cpu.simulation import SimCovCPU
from repro.simcov_gpu.simulation import SimCovGPU

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent
TRACES = ("trace_2d", "trace_3d")

INT_STATS = (
    "step", "healthy", "incubating", "expressing", "apoptotic", "dead",
    "tcells_tissue", "extravasations", "binds", "moves",
)
FLOAT_STATS = ("virions_total", "chemokine_total", "tcells_vasculature")


def load_trace(name):
    payload = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
    return payload["config"], payload["series"]


def make_params(config):
    return SimCovParams.fast_test(
        dim=tuple(config["dim"]), num_infections=config["num_infections"],
        num_steps=config["steps"],
    )


def assert_exact(series, golden, label):
    assert len(series) == len(golden), label
    for i, ref in enumerate(golden):
        rows = {f: getattr(series[i], f) for f in ref}
        assert rows == ref, f"{label}: step {i} diverged from golden trace"


def assert_tolerant(series, golden, label):
    assert len(series) == len(golden), label
    for i, ref in enumerate(golden):
        for f in INT_STATS:
            assert getattr(series[i], f) == ref[f], f"{label}: {f} at step {i}"
        for f in FLOAT_STATS:
            assert np.isclose(getattr(series[i], f), ref[f], rtol=1e-12), (
                f"{label}: {f} at step {i}"
            )


@pytest.mark.parametrize("name", TRACES)
def test_sequential_reproduces_golden_trace(name):
    config, golden = load_trace(name)
    sim = SequentialSimCov(make_params(config), seed=config["seed"])
    sim.run(config["steps"])
    assert_exact(sim.series, golden, f"{name}/sequential-gated")


@pytest.mark.parametrize("name", TRACES)
def test_ungated_sequential_reproduces_golden_trace(name):
    config, golden = load_trace(name)
    sim = SequentialSimCov(make_params(config), seed=config["seed"],
                           active_gating=False)
    sim.run(config["steps"])
    assert_exact(sim.series, golden, f"{name}/sequential-ungated")


@pytest.mark.parametrize("name", TRACES)
def test_pgas_reproduces_golden_trace(name):
    config, golden = load_trace(name)
    sim = SimCovCPU(make_params(config), nranks=3, seed=config["seed"])
    sim.run(config["steps"])
    assert_tolerant(sim.series, golden, f"{name}/pgas")


@pytest.mark.parametrize("name", TRACES)
def test_gpu_reproduces_golden_trace(name):
    config, golden = load_trace(name)
    tile = (4, 4) if len(config["dim"]) == 2 else (3, 3, 3)
    sim = SimCovGPU(make_params(config), num_devices=4, seed=config["seed"],
                    tile_shape=tile)
    sim.run(config["steps"])
    assert_tolerant(sim.series, golden, f"{name}/gpu")
