"""Tests for SIMCoV-CPU specifics: active regions, RPC accounting."""

import numpy as np
import pytest

from repro.core.params import SimCovParams
from repro.core.state import EpiState, VoxelBlock
from repro.grid.box import Box
from repro.grid.spec import GridSpec
from repro.simcov_cpu.active_region import ActiveRegion
from repro.simcov_cpu.simulation import SimCovCPU


class TestActiveRegion:
    def test_initially_all_active(self):
        spec = GridSpec((8, 8))
        blk = VoxelBlock(spec, spec.domain)
        ar = ActiveRegion(blk, 1e-6)
        assert ar.count == 64

    def test_refresh_shrinks_to_activity(self):
        spec = GridSpec((16, 16))
        blk = VoxelBlock(spec, spec.domain)
        blk.virions[8, 8] = 0.5  # padded coords; owned (7,7)
        ar = ActiveRegion(blk, 1e-6)
        ar.refresh()
        assert ar.count == 9  # the voxel + Moore dilation
        region = ar.region()
        assert region == (slice(7, 10), slice(7, 10))

    def test_idle_region_none(self):
        spec = GridSpec((8, 8))
        blk = VoxelBlock(spec, spec.domain)
        ar = ActiveRegion(blk, 1e-6)
        ar.refresh()
        assert ar.count == 0
        assert ar.region() is None

    def test_ghost_activity_activates_boundary(self):
        """Activity in a ghost voxel (from a neighbor rank) must activate
        the adjacent owned boundary voxels."""
        spec = GridSpec((16, 8))
        blk = VoxelBlock(spec, Box((0, 0), (8, 8)))  # ghosts at x=8
        blk.virions[9, 4] = 0.3  # ghost voxel (global (8,3))
        ar = ActiveRegion(blk, 1e-6)
        ar.refresh()
        assert ar.count == 3  # owned (7, 2..4)
        assert ar.mask[7, 2] and ar.mask[7, 3] and ar.mask[7, 4]

    def test_bbox_covers_disjoint_activity(self):
        spec = GridSpec((16, 16))
        blk = VoxelBlock(spec, spec.domain)
        blk.virions[2, 2] = 0.5
        blk.virions[14, 14] = 0.5
        ar = ActiveRegion(blk, 1e-6)
        ar.refresh()
        region = ar.region()
        assert region == (slice(1, 16), slice(1, 16))
        assert ar.count == 18  # two dilated 3x3 patches


class TestCpuSimulation:
    def test_work_records(self):
        p = SimCovParams.fast_test(dim=(16, 16), num_infections=1, num_steps=5)
        cpu = SimCovCPU(p, nranks=4, seed=0)
        cpu.run(5)
        assert len(cpu.step_work) == 5
        rec = cpu.step_work[0]
        assert len(rec["active_per_rank"]) == 4
        assert rec["comm"]["rpcs"] > 0
        assert rec["comm"]["reductions"] == 1

    def test_rpc_bytes_scale_with_boundary(self):
        """Linear decomposition moves more boundary bytes than block."""
        from repro.grid.decomposition import DecompositionKind

        p = SimCovParams.fast_test(dim=(24, 24), num_infections=2, num_steps=8)
        blk = SimCovCPU(p, nranks=4, seed=1)
        lin = SimCovCPU(p, nranks=4, seed=1,
                        decomposition=DecompositionKind.LINEAR)
        blk.run(8)
        lin.run(8)
        assert lin.runtime.comm.rpc_bytes > blk.runtime.comm.rpc_bytes

    def test_internode_rpcs_accounted(self):
        p = SimCovParams.fast_test(dim=(16, 16), num_infections=1, num_steps=3)
        cpu = SimCovCPU(p, nranks=4, seed=0, ranks_per_node=2)
        cpu.run(3)
        assert cpu.runtime.comm.rpcs_internode > 0
        assert cpu.runtime.comm.rpcs_internode < cpu.runtime.comm.rpcs

    def test_active_counts_grow_with_infection(self):
        p = SimCovParams.fast_test(dim=(32, 32), num_infections=4, num_steps=60)
        cpu = SimCovCPU(p, nranks=4, seed=2)
        cpu.run(60)
        early = sum(cpu.step_work[1]["active_per_rank"])
        late = sum(cpu.step_work[-1]["active_per_rank"])
        assert late > early

    def test_single_rank_degenerate(self):
        p = SimCovParams.fast_test(dim=(12, 12), num_infections=1, num_steps=20)
        cpu = SimCovCPU(p, nranks=1, seed=0)
        cpu.run(20)
        assert cpu.runtime.comm.rpcs == 0  # no neighbors
        assert len(cpu.series) == 20

    def test_gather_helpers(self):
        p = SimCovParams.fast_test(dim=(12, 12), num_infections=2, num_steps=1)
        cpu = SimCovCPU(p, nranks=4, seed=0)
        epi = cpu.gather_epi_state()
        assert epi.shape == (12, 12)
        assert (epi == EpiState.HEALTHY).all()
        assert cpu.gather_field("virions").sum() == 2.0
