"""Tests for the cost functions over directly-executed simulations."""

import numpy as np
import pytest

from repro.core.params import SimCovParams
from repro.gpusim.ledger import WorkLedger, KernelCategory
from repro.perf.costs import (
    GpuStepCost,
    cpu_step_seconds,
    fits_gpu_memory,
    gpu_memory_per_device,
    gpu_step_seconds,
)
from repro.perf.machine import PERLMUTTER, MachineModel
from repro.simcov_cpu.simulation import SimCovCPU
from repro.simcov_gpu.simulation import SimCovGPU
from repro.simcov_gpu.variants import GpuVariant


class TestCpuStepSeconds:
    def test_compute_is_max_rank(self):
        m = MachineModel()
        t = cpu_step_seconds(m, [100, 500, 200], {}, nranks=3)
        assert t == pytest.approx(500 * m.cpu_voxel_ns * 1e-9)

    def test_comm_terms_additive(self):
        m = MachineModel()
        base = cpu_step_seconds(m, [0], {}, nranks=4)
        withcomm = cpu_step_seconds(
            m, [0], {"rpcs": 4, "rpc_bytes": 4_000_000, "rpcs_internode": 2,
                     "reductions": 1}, nranks=4
        )
        assert withcomm > base
        assert withcomm - base == pytest.approx(
            1 * m.cpu_rpc_us * 1e-6
            + 0.5 * m.cpu_rpc_internode_us * 1e-6
            + 1_000_000 / (m.cpu_bw_GBps * 1e9)
            + 2 * m.cpu_allreduce_round_us * 1e-6
        )

    def test_empty_rank_list(self):
        assert cpu_step_seconds(MachineModel(), [], {}, 1) == 0.0


class TestGpuStepSeconds:
    def _ledger(self):
        led = WorkLedger()
        led.record_launch(KernelCategory.UPDATE_AGENTS, 1000)
        led.record_launch(KernelCategory.REDUCE_STATS, 8000)
        led.record_tree_reduction(8000, 32)
        led.record_copy(1024, internode=False)
        led.record_copy(1024, internode=True)
        led.record_device_reduction()
        return led

    def test_breakdown_positive(self):
        cost = gpu_step_seconds(PERLMUTTER, self._ledger(), [600, 400], 2, True)
        assert cost.update_seconds > 0
        assert cost.reduce_seconds > 0
        assert cost.comm_seconds > 0
        assert cost.coord_seconds > 0
        assert cost.total_seconds == pytest.approx(
            cost.update_seconds + cost.reduce_seconds + cost.sweep_seconds
            + cost.comm_seconds + cost.coord_seconds
        )

    def test_imbalance_scales_update(self):
        led = self._ledger()
        balanced = gpu_step_seconds(PERLMUTTER, led, [500, 500], 2, True)
        skewed = gpu_step_seconds(PERLMUTTER, led, [1000, 0], 2, True)
        assert skewed.update_seconds > balanced.update_seconds

    def test_tiling_locality_discount(self):
        led = self._ledger()
        tiled = gpu_step_seconds(PERLMUTTER, led, [500, 500], 2, True)
        untiled = gpu_step_seconds(PERLMUTTER, led, [500, 500], 2, False)
        assert tiled.update_seconds < untiled.update_seconds
        assert tiled.reduce_seconds < untiled.reduce_seconds


class TestOptimizationOrdering:
    """The Fig 4 bar ordering, priced from real executed runs."""

    @pytest.fixture(scope="class")
    def costs(self):
        # Sparse workload (one focus on 64^2): inactive tiles exist, so
        # memory tiling has something to skip (as in the paper's runs,
        # where most of the lung is quiescent).
        p = SimCovParams.fast_test(dim=(64, 64), num_infections=1, num_steps=30)
        out = {}
        for variant in GpuVariant:
            sim = SimCovGPU(p, num_devices=2, seed=5, variant=variant,
                            tile_shape=(8, 8))
            sim.run(30)
            total = GpuStepCost(0, 0, 0, 0, 0)
            tot_u = tot_r = 0.0
            for w in sim.step_work:
                c = gpu_step_seconds(
                    PERLMUTTER, w["ledger"], w["active_per_device"], 2,
                    variant.use_tiling,
                )
                tot_u += c.update_seconds + c.sweep_seconds
                tot_r += c.reduce_seconds
            out[variant] = (tot_u, tot_r)
        return out

    def test_reductions_dominate_unoptimized(self, costs):
        u, r = costs[GpuVariant.UNOPTIMIZED]
        assert r > u

    def test_each_optimization_helps(self, costs):
        unopt = sum(costs[GpuVariant.UNOPTIMIZED])
        fast = sum(costs[GpuVariant.FAST_REDUCTION])
        tile = sum(costs[GpuVariant.MEMORY_TILING])
        comb = sum(costs[GpuVariant.COMBINED])
        assert fast < unopt
        assert tile < unopt
        assert comb < min(fast, tile)

    def test_fast_reduction_cuts_reduce_time(self, costs):
        assert (
            costs[GpuVariant.FAST_REDUCTION][1]
            < costs[GpuVariant.UNOPTIMIZED][1] / 5
        )

    def test_tiling_cuts_update_time(self, costs):
        assert (
            costs[GpuVariant.MEMORY_TILING][0]
            < costs[GpuVariant.UNOPTIMIZED][0]
        )

    def test_tiling_also_helps_reductions(self, costs):
        """The paper's locality observation (§3.4)."""
        assert (
            costs[GpuVariant.MEMORY_TILING][1]
            < costs[GpuVariant.UNOPTIMIZED][1]
        )


class TestMemoryModel:
    def test_per_device_split(self):
        m = MachineModel()
        assert gpu_memory_per_device(m, 10**8, 4) == 25_000_000 * m.gpu_bytes_per_voxel

    def test_paper_base_fits_four_a100s(self):
        """§4.2: the 10,000^2 base problem fits 4 A100s."""
        assert fits_gpu_memory(PERLMUTTER, 10_000**2, 4)

    def test_too_big_rejected(self):
        assert not fits_gpu_memory(PERLMUTTER, 10_000_000**2, 4)


class TestCpuDirectCosts:
    def test_step_costs_decrease_with_ranks(self):
        p = SimCovParams.fast_test(dim=(32, 32), num_infections=8, num_steps=10)
        totals = {}
        for nranks in (1, 4):
            sim = SimCovCPU(p, nranks=nranks, seed=1)
            sim.run(10)
            totals[nranks] = sum(
                cpu_step_seconds(
                    PERLMUTTER, w["active_per_rank"], w["comm"], nranks
                )
                for w in sim.step_work
            )
        assert totals[4] < totals[1]
