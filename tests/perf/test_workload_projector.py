"""Tests for workload traces, the disk activity model, and the projector."""

import numpy as np
import pytest

from repro.core.params import SimCovParams
from repro.perf.activity import DiskActivityModel
from repro.perf.machine import PAPER_SCALE_GROWTH_SPEED, PERLMUTTER
from repro.perf.projector import (
    _Apportioner,
    project_cpu_runtime,
    project_gpu_runtime,
)
from repro.perf.workload import WorkloadTrace
from repro.grid.decomposition import Decomposition
from repro.grid.spec import GridSpec
from repro.simcov_gpu.variants import GpuVariant


@pytest.fixture(scope="module")
def trace():
    p = SimCovParams.fast_test(dim=(64, 64), num_infections=4, num_steps=160)
    return WorkloadTrace.record(p, seed=3, supergrid=16, stride=4)


class TestWorkloadTrace:
    def test_shapes(self, trace):
        assert trace.counts.shape == (40, 16, 16)
        assert trace.num_samples == 40
        assert trace.sample_weight(0) == 4
        assert trace.sample_weight(trace.num_samples - 1) == 4

    def test_counts_bounded_by_supercell(self, trace):
        cell = (64 / 16) ** 2
        assert trace.counts.max() <= cell
        assert trace.counts.min() >= 0

    def test_activity_grows(self, trace):
        act = trace.active_voxels()
        assert act[-1] > act[0]
        assert trace.active_fraction()[-1] <= 1.0

    def test_growth_speed_positive(self, trace):
        v = trace.growth_speed()
        assert 0.01 < v < 5.0

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            WorkloadTrace.record(SimCovParams.fast_test(dim=(8, 8)).with_(dim=(4, 4, 4)))


class TestDiskActivityModel:
    def test_counts_grow_and_saturate(self):
        p = SimCovParams.default_covid(dim=(1000, 1000), num_infections=8,
                                       num_steps=20_000)
        m = DiskActivityModel(p, seed=1, speed=0.1, supergrid=32, samples=32)
        frac = m.active_fraction()
        assert frac[0] < 0.01
        assert frac[-1] > 0.9  # radius 2000 >> domain: saturated
        assert (np.diff(frac) >= -1e-9).all()

    def test_more_foi_more_activity(self):
        base = dict(dim=(4000, 4000), num_steps=10_000)
        lo = DiskActivityModel(
            SimCovParams.default_covid(num_infections=4, **base), speed=0.02
        )
        hi = DiskActivityModel(
            SimCovParams.default_covid(num_infections=64, **base), speed=0.02
        )
        assert hi.mean_active_fraction() > 2 * lo.mean_active_fraction()

    def test_matches_real_trace_shape(self, trace):
        """Calibrated disk model tracks the real activity curve at small
        scale — the validation that justifies paper-scale synthesis."""
        p = SimCovParams.fast_test(dim=(64, 64), num_infections=4, num_steps=160)
        model = DiskActivityModel(
            p, seed=3, speed=trace.growth_speed(), supergrid=16, samples=40
        )
        real = trace.active_fraction()
        synth = np.interp(
            trace.sample_steps, model.sample_steps, model.active_fraction()
        )
        # Same order of magnitude throughout the growth phase.
        mid = slice(len(real) // 4, None)
        ratio = (synth[mid] + 0.01) / (real[mid] + 0.01)
        assert ratio.min() > 0.3 and ratio.max() < 3.0

    def test_zero_foi(self):
        p = SimCovParams.default_covid(dim=(500, 500), num_infections=0)
        m = DiskActivityModel(p, speed=0.1)
        assert m.mean_active_fraction() == 0.0


class TestApportioner:
    def test_conserves_counts(self):
        spec = GridSpec((100, 80))
        decomp = Decomposition.blocks(spec, 6)
        app = _Apportioner((100, 80), 16, decomp)
        rng = np.random.default_rng(0)
        counts = rng.random((16, 16)) * 10
        per_rank = app.per_rank(counts)
        assert per_rank.shape == decomp.proc_grid
        assert per_rank.sum() == pytest.approx(counts.sum())

    def test_localized_activity_lands_on_owner(self):
        spec = GridSpec((64, 64))
        decomp = Decomposition.blocks(spec, 4)
        app = _Apportioner((64, 64), 8, decomp)
        counts = np.zeros((8, 8))
        counts[1, 1] = 5.0  # supercell centered near (12, 12): rank (0,0)
        per_rank = app.per_rank(counts)
        assert per_rank[0, 0] == pytest.approx(5.0)
        assert per_rank[1, 1] == 0.0


class TestProjector:
    @pytest.fixture(scope="class")
    def model(self):
        p = SimCovParams.default_covid()
        return DiskActivityModel(
            p, seed=1, speed=PAPER_SCALE_GROWTH_SPEED, supergrid=32, samples=24
        )

    def test_cpu_scales_down_with_ranks(self, model):
        t128 = project_cpu_runtime(PERLMUTTER, model, 128).total_seconds
        t2048 = project_cpu_runtime(PERLMUTTER, model, 2048).total_seconds
        assert t2048 < t128 / 8  # near-ideal CPU scaling (Fig 6)

    def test_gpu_saturates(self, model):
        """Fig 6: GPU deviates from ideal past ~16 devices."""
        t4 = project_gpu_runtime(PERLMUTTER, model, 4).total_seconds
        t16 = project_gpu_runtime(PERLMUTTER, model, 16).total_seconds
        t64 = project_gpu_runtime(PERLMUTTER, model, 64).total_seconds
        assert t16 < t4
        assert t64 > t16 / 4  # far from ideal 4x

    def test_base_speedup_near_paper(self, model):
        c = project_cpu_runtime(PERLMUTTER, model, 128).total_seconds
        g = project_gpu_runtime(PERLMUTTER, model, 4).total_seconds
        assert 3.0 < c / g < 7.0  # paper: 4.98

    def test_unoptimized_slower_than_combined(self, model):
        comb = project_gpu_runtime(
            PERLMUTTER, model, 4, variant=GpuVariant.COMBINED
        ).total_seconds
        unopt = project_gpu_runtime(
            PERLMUTTER, model, 4, variant=GpuVariant.UNOPTIMIZED
        ).total_seconds
        assert unopt > comb

    def test_breakdown_sums(self, model):
        r = project_gpu_runtime(PERLMUTTER, model, 8)
        assert r.total_seconds == pytest.approx(
            r.compute_seconds + r.reduce_seconds + r.comm_seconds
            + r.coord_seconds + r.sweep_seconds + r.launch_seconds
        )

    def test_trace_provider_works_too(self, trace):
        """The projector accepts recorded traces (same-scale studies)."""
        c = project_cpu_runtime(PERLMUTTER, trace, 4).total_seconds
        g = project_gpu_runtime(PERLMUTTER, trace, 4).total_seconds
        assert c > 0 and g > 0
