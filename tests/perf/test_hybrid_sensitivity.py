"""Unit tests for the hybrid scheme and the sensitivity analysis."""

import pytest

from repro.core.params import SimCovParams
from repro.perf.activity import DiskActivityModel
from repro.perf.hybrid import HybridRuntime, project_hybrid_runtime
from repro.perf.machine import MachineModel, PAPER_SCALE_GROWTH_SPEED, PERLMUTTER
from repro.perf.sensitivity import (
    PERTURBED_FIELDS,
    ShapeFindings,
    evaluate_shape,
    shape_robustness,
)


@pytest.fixture(scope="module")
def sparse_model():
    p = SimCovParams.default_covid(dim=(10_000, 10_000), num_infections=16)
    return DiskActivityModel(
        p, seed=1, speed=PAPER_SCALE_GROWTH_SPEED, supergrid=32, samples=12
    )


class TestHybrid:
    def test_returns_breakdown(self, sparse_model):
        r = project_hybrid_runtime(PERLMUTTER, sparse_model, 4)
        assert isinstance(r, HybridRuntime)
        assert r.total_seconds > 0
        assert r.host_seconds >= 0
        assert r.compute_seconds <= r.total_seconds

    def test_more_host_cores_reduce_host_time(self, sparse_model):
        few = project_hybrid_runtime(
            PERLMUTTER, sparse_model, 4, host_cores_per_gpu=4
        )
        many = project_hybrid_runtime(
            PERLMUTTER, sparse_model, 4, host_cores_per_gpu=64
        )
        assert many.host_seconds < few.host_seconds

    def test_no_rebalance_no_handoff(self, sparse_model):
        r = project_hybrid_runtime(
            PERLMUTTER, sparse_model, 4, rebalance_period=0
        )
        assert r.handoff_seconds == 0.0

    def test_overlap_semantics(self, sparse_model):
        """Compute is the max of GPU and host work, never their sum."""
        r = project_hybrid_runtime(PERLMUTTER, sparse_model, 4)
        # Host work alone must not exceed the overlapped compute total.
        assert r.host_seconds <= r.compute_seconds + 1e-9


class TestShapeFindings:
    def test_all_hold(self):
        good = ShapeFindings(True, True, True, True)
        assert good.all_hold()
        assert not ShapeFindings(True, True, True, False).all_hold()

    def test_baseline_model(self):
        assert evaluate_shape(MachineModel(), samples=8).all_hold()

    def test_perturbed_fields_exist(self):
        m = MachineModel()
        for name in PERTURBED_FIELDS:
            assert hasattr(m, name)

    def test_robustness_limited_models(self):
        out = shape_robustness(factors=(2.0,), samples=6, max_models=3)
        assert out["models"] == 3
        for name, frac in out.items():
            if name != "models":
                assert 0.0 <= frac <= 1.0
