"""Repo-wide fixtures.

The shared-memory leak check runs around *every* test: any segment the
distributed runtime creates must be gone from ``/dev/shm`` by teardown,
even when the test failed mid-run.  The check is one directory listing,
so non-dist tests pay essentially nothing.
"""

import pytest

from repro.dist import shm


@pytest.fixture(autouse=True)
def _no_shm_leaks():
    before = shm.live_segment_names()
    yield
    # Defensive sweep first: a test that failed mid-run may still track
    # open segments; close (and, for owned ones, unlink) them so one
    # failure doesn't cascade leak-assertions through the whole session.
    shm.release_all()
    leaked = shm.live_segment_names() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
