"""Report/summarizer tests on synthetic event streams."""

import pytest

from repro.telemetry import Event, GAUGE, SPAN, format_report, summarize


def phase(name, dur, rank=0, step=0, skipped=False):
    attrs = {"skipped": True} if skipped else {}
    return Event(SPAN, name, 0.0, dur=dur, cat="phase", rank=rank, step=step,
                 attrs=attrs)


def barrier(name, dur, rank=0, step=0, **attrs):
    return Event(SPAN, name, 0.0, dur=dur, cat="barrier", rank=rank,
                 step=step, attrs=attrs)


class TestSummarize:
    def test_phases_sorted_by_total_seconds(self):
        s = summarize([
            phase("cheap", 0.1),
            phase("hot", 1.0),
            phase("hot", 1.0),
            phase("skippy", 0.0, skipped=True),
        ])
        assert list(s["phases"]) == ["hot", "cheap", "skippy"]
        assert s["phases"]["hot"] == {
            "seconds": pytest.approx(2.0),
            "calls": 2,
            "skips": 0,
            "mean_seconds": pytest.approx(1.0),
        }
        assert s["phases"]["skippy"]["skips"] == 1

    def test_barrier_histogram_buckets(self):
        s = summarize([
            barrier("open_exchange", 5e-6),
            barrier("open_exchange", 5e-4),
            barrier("step_start", 5e-2),
        ])
        counts = {
            (row["lo"], row["hi"]): row["count"]
            for row in s["barrier_histogram"]
        }
        assert counts[(0.0, 1e-5)] == 1
        assert counts[(1e-4, 1e-3)] == 1
        assert counts[(1e-2, 1e-1)] == 1
        assert s["barrier_waits"] == 3
        assert s["barrier_total_seconds"] == pytest.approx(5e-6 + 5e-4 + 5e-2)

    def test_busy_subtracts_only_in_phase_barriers(self):
        """Phase barriers nest inside exchange spans; step barriers don't."""
        s = summarize([
            phase("open_exchange", 0.5, rank=0),
            barrier("open_exchange", 0.4, rank=0),   # inside the phase span
            barrier("step_start", 10.0, rank=0),     # outside every phase
        ])
        row = s["per_rank"][0]
        assert row["phase_seconds"] == pytest.approx(0.5)
        assert row["barrier_seconds"] == pytest.approx(10.4)
        assert row["busy_seconds"] == pytest.approx(0.1)

    def test_coordinator_step_end_marked_in_phase(self):
        """The dist coordinator's step_end wait nests inside its reduce
        phase span, flagged via the in_phase attribute."""
        s = summarize([
            phase("reduce", 1.0, rank=-1),
            barrier("step_end", 0.9, rank=-1, in_phase=True),
        ])
        assert s["per_rank"][-1]["busy_seconds"] == pytest.approx(0.1)

    def test_imbalance_over_worker_lanes_only(self):
        s = summarize([
            phase("intents", 3.0, rank=0),
            phase("intents", 1.0, rank=1),
            phase("reduce", 100.0, rank=-1),  # control plane: excluded
        ])
        assert s["imbalance"] == pytest.approx(1.5)

    def test_step_count(self):
        s = summarize([phase("a", 0.1, step=t) for t in range(7)])
        assert s["steps"] == 7


def gauge(name, value, rank=0, step=0, cat="obs"):
    return Event(GAUGE, name, 0.0, value=value, cat=cat, rank=rank,
                 step=step)


class TestDroppedEvents:
    def test_summarize_keeps_max_per_rank(self):
        """telemetry_dropped gauges are cumulative; the report keeps the
        high-water mark per rank and hides zero rows."""
        s = summarize([
            gauge("telemetry_dropped", 3, rank=1, cat="telemetry"),
            gauge("telemetry_dropped", 7, rank=1, cat="telemetry"),
            gauge("telemetry_dropped", 0, rank=0, cat="telemetry"),
            phase("diffuse", 0.1),
        ])
        assert s["dropped"] == {1: 7}

    def test_loud_warning_in_report(self):
        text = format_report(summarize([
            gauge("telemetry_dropped", 42, rank=2, cat="telemetry"),
            phase("diffuse", 0.1),
        ]))
        assert "WARNING: DROPPED 42 events (rank 2)" in text
        assert "undercount" in text
        # Dropped-count gauges never leak into the step/phase tables.
        assert text.index("WARNING") < text.index("trace:")

    def test_no_warning_when_nothing_dropped(self):
        text = format_report(summarize([phase("diffuse", 0.1)]))
        assert "DROPPED" not in text


class TestImbalancePanel:
    def test_series_collected_from_gauges(self):
        s = summarize([
            gauge("imbalance_index", 0.5, rank=-1, step=0),
            gauge("imbalance_index", 1.5, rank=-1, step=1),
            phase("diffuse", 0.1),
        ])
        assert s["imbalance_series"] == [(0, 0.5), (1, 1.5)]

    def test_panel_rendered_with_bars_and_peak(self):
        events = [phase("diffuse", 0.1)] + [
            gauge("imbalance_index", 0.1 * t, rank=-1, step=t)
            for t in range(10)
        ]
        text = format_report(summarize(events))
        assert "imbalance over time" in text
        assert "peak 0.900 over 10 samples" in text
        assert "|" in text and "#" in text

    def test_long_series_downsampled(self):
        events = [
            gauge("imbalance_index", 1.0, rank=-1, step=t)
            for t in range(500)
        ]
        text = format_report(summarize(events))
        panel_rows = [ln for ln in text.splitlines()
                      if ln.strip().startswith("step ")]
        assert 0 < len(panel_rows) <= 24
        assert "over 500 samples" in text

    def test_no_panel_without_series(self):
        text = format_report(summarize([phase("diffuse", 0.1)]))
        assert "imbalance over time" not in text


class TestFormatReport:
    def test_renders_all_sections(self):
        text = format_report(summarize([
            phase("diffuse", 0.5, rank=0, step=0),
            barrier("open_exchange", 0.01, rank=0),
        ]))
        assert "top phases" in text
        assert "mean_seconds" in text
        assert "barrier waits: 1" in text
        assert "per-rank" in text
        assert "imbalance" in text
        assert "diffuse" in text

    def test_meta_header_line(self):
        summary = summarize([phase("diffuse", 0.5)])
        text = format_report(
            summary, meta={"host": "vm", "cpu_count": 2, "git_sha": "abc123"}
        )
        assert text.splitlines()[0] == "run: host=vm cpus=2 git=abc123"
        assert "trace:" in text

    def test_no_meta_no_header(self):
        text = format_report(summarize([phase("diffuse", 0.5)]))
        assert not text.startswith("run:")
