"""Report/summarizer tests on synthetic event streams."""

import pytest

from repro.telemetry import Event, SPAN, format_report, summarize


def phase(name, dur, rank=0, step=0, skipped=False):
    attrs = {"skipped": True} if skipped else {}
    return Event(SPAN, name, 0.0, dur=dur, cat="phase", rank=rank, step=step,
                 attrs=attrs)


def barrier(name, dur, rank=0, step=0, **attrs):
    return Event(SPAN, name, 0.0, dur=dur, cat="barrier", rank=rank,
                 step=step, attrs=attrs)


class TestSummarize:
    def test_phases_sorted_by_total_seconds(self):
        s = summarize([
            phase("cheap", 0.1),
            phase("hot", 1.0),
            phase("hot", 1.0),
            phase("skippy", 0.0, skipped=True),
        ])
        assert list(s["phases"]) == ["hot", "cheap", "skippy"]
        assert s["phases"]["hot"] == {
            "seconds": pytest.approx(2.0),
            "calls": 2,
            "skips": 0,
            "mean_seconds": pytest.approx(1.0),
        }
        assert s["phases"]["skippy"]["skips"] == 1

    def test_barrier_histogram_buckets(self):
        s = summarize([
            barrier("open_exchange", 5e-6),
            barrier("open_exchange", 5e-4),
            barrier("step_start", 5e-2),
        ])
        counts = {
            (row["lo"], row["hi"]): row["count"]
            for row in s["barrier_histogram"]
        }
        assert counts[(0.0, 1e-5)] == 1
        assert counts[(1e-4, 1e-3)] == 1
        assert counts[(1e-2, 1e-1)] == 1
        assert s["barrier_waits"] == 3
        assert s["barrier_total_seconds"] == pytest.approx(5e-6 + 5e-4 + 5e-2)

    def test_busy_subtracts_only_in_phase_barriers(self):
        """Phase barriers nest inside exchange spans; step barriers don't."""
        s = summarize([
            phase("open_exchange", 0.5, rank=0),
            barrier("open_exchange", 0.4, rank=0),   # inside the phase span
            barrier("step_start", 10.0, rank=0),     # outside every phase
        ])
        row = s["per_rank"][0]
        assert row["phase_seconds"] == pytest.approx(0.5)
        assert row["barrier_seconds"] == pytest.approx(10.4)
        assert row["busy_seconds"] == pytest.approx(0.1)

    def test_coordinator_step_end_marked_in_phase(self):
        """The dist coordinator's step_end wait nests inside its reduce
        phase span, flagged via the in_phase attribute."""
        s = summarize([
            phase("reduce", 1.0, rank=-1),
            barrier("step_end", 0.9, rank=-1, in_phase=True),
        ])
        assert s["per_rank"][-1]["busy_seconds"] == pytest.approx(0.1)

    def test_imbalance_over_worker_lanes_only(self):
        s = summarize([
            phase("intents", 3.0, rank=0),
            phase("intents", 1.0, rank=1),
            phase("reduce", 100.0, rank=-1),  # control plane: excluded
        ])
        assert s["imbalance"] == pytest.approx(1.5)

    def test_step_count(self):
        s = summarize([phase("a", 0.1, step=t) for t in range(7)])
        assert s["steps"] == 7


class TestFormatReport:
    def test_renders_all_sections(self):
        text = format_report(summarize([
            phase("diffuse", 0.5, rank=0, step=0),
            barrier("open_exchange", 0.01, rank=0),
        ]))
        assert "top phases" in text
        assert "mean_seconds" in text
        assert "barrier waits: 1" in text
        assert "per-rank" in text
        assert "imbalance" in text
        assert "diffuse" in text
