"""Tracer unit tests: span nesting/attributes, counters and gauges, the
null tracer's short-circuit contract, and the PhaseMetricsSink view."""

import pytest

from repro.engine.metrics import PhaseMetrics
from repro.telemetry import (
    COUNTER,
    GAUGE,
    NULL_TRACER,
    SPAN,
    Event,
    NullTracer,
    PhaseMetricsSink,
    RingBufferSink,
    Tracer,
)


class TestSpans:
    def test_nesting_stamps_parent_and_depth(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        # Spans close innermost-first.
        inner, middle, outer = ring.spans()
        assert [e.name for e in (inner, middle, outer)] == [
            "inner", "middle", "outer",
        ]
        assert outer.attrs["depth"] == 0 and "parent" not in outer.attrs
        assert middle.attrs == {"parent": "outer", "depth": 1}
        assert inner.attrs == {"parent": "middle", "depth": 2}

    def test_span_times_its_body(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        with tracer.span("work", cat="phase", step=3):
            pass
        (ev,) = ring.spans()
        assert ev.kind == SPAN
        assert ev.cat == "phase" and ev.step == 3
        assert ev.dur >= 0.0 and ev.ts > 0.0

    def test_emit_span_stamps_backend_and_rank(self):
        ring = RingBufferSink()
        tracer = Tracer(rank=5, backend="pgas", sinks=[ring])
        tracer.emit_span("diffuse", 10.0, 0.25, cat="phase", step=7,
                         skipped=False)
        (ev,) = ring.spans()
        assert ev.rank == 5
        assert ev.ts == 10.0 and ev.dur == 0.25
        assert ev.attrs["backend"] == "pgas"
        assert ev.attrs["skipped"] is False

    def test_emit_preserves_foreign_rank(self):
        """The dist merge path: forwarded events keep the worker's rank."""
        ring = RingBufferSink()
        tracer = Tracer(rank=-1, sinks=[ring])
        tracer.emit(Event(SPAN, "intents", 1.0, dur=0.1, rank=3))
        assert ring.spans()[0].rank == 3


class TestCountersAndGauges:
    def test_counter_and_gauge_kinds(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        tracer.counter("halo_bytes", 4096, cat="comm", step=2)
        tracer.gauge("active_voxels", 123, cat="gating", step=2)
        counter, gauge = list(ring.events)
        assert counter.kind == COUNTER and counter.value == 4096.0
        assert gauge.kind == GAUGE and gauge.value == 123.0
        assert ring.values("halo_bytes") == [4096.0]
        assert ring.values("active_voxels") == [123.0]


class TestLifecycle:
    def test_close_flushes_sinks_once(self):
        class Closable:
            closed = 0

            def on_event(self, event):
                pass

            def close(self):
                self.closed += 1

        sink = Closable()
        tracer = Tracer(sinks=[sink])
        tracer.close()
        tracer.close()
        assert sink.closed == 1

    def test_add_sink_chains(self):
        ring = RingBufferSink()
        tracer = Tracer().add_sink(ring)
        tracer.counter("x", 1)
        assert len(ring.events) == 1


class TestNullTracer:
    def test_is_falsy_and_enabled_false(self):
        assert not NULL_TRACER
        assert NULL_TRACER.enabled is False
        assert bool(Tracer()) is True and Tracer().enabled is True

    def test_all_emissions_are_noops(self):
        tracer = NullTracer()
        with tracer.span("s"):
            pass
        tracer.emit_span("s", 0.0, 1.0)
        tracer.counter("c", 1)
        tracer.gauge("g", 1)
        tracer.emit(Event(SPAN, "s", 0.0))
        tracer.close()
        assert tracer.sinks == ()

    def test_add_sink_raises(self):
        with pytest.raises(RuntimeError):
            NULL_TRACER.add_sink(RingBufferSink())


class TestPhaseMetricsSink:
    def test_aggregates_phase_spans(self):
        metrics = PhaseMetrics()
        sink = PhaseMetricsSink(metrics)
        sink.on_event(Event(SPAN, "diffuse", 0.0, dur=0.5, cat="phase"))
        sink.on_event(Event(SPAN, "diffuse", 1.0, dur=0.25, cat="phase"))
        sink.on_event(
            Event(SPAN, "tile_sweep", 2.0, cat="phase",
                  attrs={"skipped": True})
        )
        # Non-phase spans and counters are ignored.
        sink.on_event(Event(SPAN, "step", 0.0, dur=9.0, cat="step"))
        sink.on_event(Event(COUNTER, "diffuse", 0.0, value=1.0))
        assert metrics.seconds["diffuse"] == pytest.approx(0.75)
        assert metrics.calls["diffuse"] == 2
        assert metrics.skips["tile_sweep"] == 1

    def test_rank_filter_drops_foreign_ranks(self):
        """Coordinator metrics must not double-count drained worker spans."""
        metrics = PhaseMetrics()
        sink = PhaseMetricsSink(metrics, rank=-1)
        sink.on_event(Event(SPAN, "reduce", 0.0, dur=1.0, cat="phase", rank=-1))
        sink.on_event(Event(SPAN, "reduce", 0.0, dur=9.0, cat="phase", rank=0))
        assert metrics.seconds["reduce"] == pytest.approx(1.0)
        assert metrics.calls["reduce"] == 1
