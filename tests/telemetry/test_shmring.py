"""Shared-memory ring tests: codec round-trip, overflow accounting, and
the drain/reset protocol — exercised on plain numpy arrays (the ring
code is agnostic to whether the buffer lives in shared memory)."""

import numpy as np
import pytest

from repro.telemetry import (
    COUNTER,
    GAUGE,
    SPAN,
    RECORD_WIDTH,
    RingCodec,
    ShmRingSink,
    Tracer,
    drain_ring,
)
from repro.telemetry.events import Event

NAMES = (
    "phase:diffuse",
    "barrier:open_exchange",
    "comm:halo_bytes",
    "gating:active_voxels",
)


def make_ring(capacity=8):
    data = np.zeros((capacity, RECORD_WIDTH))
    count = np.zeros(1, dtype=np.int64)
    dropped = np.zeros(1, dtype=np.int64)
    codec = RingCodec(NAMES)
    return data, count, dropped, codec


class TestCodecRoundTrip:
    @pytest.mark.parametrize(
        "event",
        [
            Event(SPAN, "diffuse", 12.5, dur=0.75, cat="phase", step=9),
            Event(SPAN, "open_exchange", 1.0, dur=0.01, cat="barrier",
                  step=2, attrs={"skipped": True}),
            Event(COUNTER, "halo_bytes", 3.0, value=4096.0, cat="comm",
                  step=1),
            Event(GAUGE, "active_voxels", 4.0, value=37.0, cat="gating",
                  step=5),
        ],
    )
    def test_event_survives_ring(self, event):
        data, count, dropped, codec = make_ring()
        ShmRingSink(data, count, dropped, codec).on_event(event)
        assert int(count[0]) == 1 and int(dropped[0]) == 0
        (decoded,) = drain_ring(data, count, codec, rank=3)
        assert decoded.kind == event.kind
        assert decoded.name == event.name and decoded.cat == event.cat
        assert decoded.ts == event.ts and decoded.step == event.step
        assert decoded.rank == 3  # the drain side stamps the rank
        if event.kind == SPAN:
            assert decoded.dur == event.dur
            assert bool(decoded.attrs.get("skipped")) == bool(
                event.attrs.get("skipped")
            )
        else:
            assert decoded.value == event.value

    def test_id_assignment_is_order(self):
        codec = RingCodec(NAMES)
        assert codec.name_id("phase", "diffuse") == 0
        assert codec.name_id("gating", "active_voxels") == 3
        assert codec.name_id("phase", "nope") is None


class TestOverflowAndUnknownNames:
    def test_unknown_name_increments_dropped(self):
        data, count, dropped, codec = make_ring()
        sink = ShmRingSink(data, count, dropped, codec)
        sink.on_event(Event(SPAN, "not_in_table", 0.0, cat="phase"))
        assert int(count[0]) == 0 and int(dropped[0]) == 1

    def test_full_ring_drops_not_overwrites(self):
        data, count, dropped, codec = make_ring(capacity=2)
        sink = ShmRingSink(data, count, dropped, codec)
        for i in range(5):
            sink.on_event(
                Event(COUNTER, "halo_bytes", float(i), value=float(i),
                      cat="comm")
            )
        assert int(count[0]) == 2 and int(dropped[0]) == 3
        events = drain_ring(data, count, codec, rank=0)
        assert [e.value for e in events] == [0.0, 1.0]


class TestDrain:
    def test_drain_resets_count_for_reuse(self):
        data, count, dropped, codec = make_ring()
        sink = ShmRingSink(data, count, dropped, codec)
        tracer = Tracer(rank=1, sinks=[sink])
        tracer.gauge("active_voxels", 10, cat="gating", step=0)
        assert len(drain_ring(data, count, codec, rank=1)) == 1
        assert int(count[0]) == 0
        tracer.gauge("active_voxels", 11, cat="gating", step=1)
        (ev,) = drain_ring(data, count, codec, rank=1)
        assert ev.value == 11.0 and ev.step == 1

    def test_empty_drain(self):
        data, count, _, codec = make_ring()
        assert drain_ring(data, count, codec, rank=0) == []
