"""Sink tests: ring-buffer bounds, JSONL round-trip, Chrome-trace schema
validation, and the format sniffing of ``load_events``."""

import json

import pytest

from repro.telemetry import (
    COUNTER,
    GAUGE,
    SPAN,
    ChromeTraceSink,
    Event,
    JsonlSink,
    RingBufferSink,
    Tracer,
    load_events,
    read_jsonl,
)


class TestRingBufferSink:
    def test_bounded_capacity(self):
        ring = RingBufferSink(capacity=3)
        for i in range(5):
            ring.on_event(Event(COUNTER, "c", float(i), value=float(i)))
        assert ring.values("c") == [2.0, 3.0, 4.0]

    def test_spans_filters_by_cat(self):
        ring = RingBufferSink()
        ring.on_event(Event(SPAN, "a", 0.0, cat="phase"))
        ring.on_event(Event(SPAN, "b", 0.0, cat="barrier"))
        ring.on_event(Event(GAUGE, "g", 0.0))
        assert [e.name for e in ring.spans()] == ["a", "b"]
        assert [e.name for e in ring.spans("barrier")] == ["b"]


class TestJsonlRoundTrip:
    def test_events_survive_write_and_read(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(rank=2, backend="dist", sinks=[JsonlSink(path)])
        tracer.emit_span("diffuse", 1.5, 0.25, cat="phase", step=4,
                         skipped=False)
        tracer.counter("halo_bytes", 8192, cat="comm", step=4)
        tracer.gauge("active_voxels", 17, cat="gating", step=4)
        tracer.close()

        span, counter, gauge = read_jsonl(path)
        assert span.kind == SPAN and span.name == "diffuse"
        assert span.ts == 1.5 and span.dur == 0.25
        assert span.rank == 2 and span.step == 4
        assert span.attrs["backend"] == "dist"
        assert counter.kind == COUNTER and counter.value == 8192.0
        assert gauge.kind == GAUGE and gauge.value == 17.0
        # The JSONL form is one valid JSON object per line: the
        # run-metadata header, then the three events.
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4
        assert all(isinstance(json.loads(ln), dict) for ln in lines)
        header = json.loads(lines[0])
        assert header["kind"] == "meta"
        assert header["host"] and header["cpu_count"] >= 1


class TestChromeTraceSchema:
    EVENTS = [
        Event(SPAN, "intents", 10.0, dur=0.5, cat="phase", rank=0, step=1),
        Event(SPAN, "open_exchange", 10.2, dur=0.1, cat="barrier", rank=1,
              step=1),
        Event(COUNTER, "halo_bytes", 10.3, value=2048.0, cat="comm", rank=1),
        Event(SPAN, "step_end", 10.6, dur=0.05, cat="barrier", rank=-1,
              step=1),
    ]

    def test_render_schema(self):
        payload = ChromeTraceSink.render(self.EVENTS)
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        recs = payload["traceEvents"]
        # One process_name metadata record per rank, labeled.
        meta = {r["pid"]: r for r in recs if r["ph"] == "M"}
        assert set(meta) == {-1, 0, 1}
        assert meta[0]["args"]["name"] == "rank 0"
        assert meta[-1]["args"]["name"] == "coordinator"
        # Spans are complete events with microsecond ts/dur relative to
        # the earliest timestamp.
        spans = [r for r in recs if r["ph"] == "X"]
        assert [s["name"] for s in spans] == [
            "intents", "open_exchange", "step_end",
        ]
        first = spans[0]
        assert first["ts"] == 0.0 and first["dur"] == pytest.approx(5e5)
        assert first["pid"] == 0 and first["args"]["step"] == 1
        barrier = spans[1]
        assert barrier["cat"] == "barrier"
        assert barrier["ts"] == pytest.approx(0.2e6)
        # Counters are "C" records keyed by their own name.
        (counter,) = [r for r in recs if r["ph"] == "C"]
        assert counter["args"] == {"halo_bytes": 2048.0}

    def test_sink_writes_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(path)
        for ev in self.EVENTS:
            sink.on_event(ev)
        sink.close()
        sink.close()  # idempotent
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == len(self.EVENTS) + 3


class TestLoadEventsSniffing:
    def test_jsonl_detected_despite_brace_prefix(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(sinks=[JsonlSink(path)])
        tracer.emit_span("a", 0.0, 1.0, cat="phase", step=0)
        tracer.emit_span("b", 1.0, 1.0, cat="phase", step=1)
        tracer.close()
        events = load_events(path)
        assert [e.name for e in events] == ["a", "b"]

    def test_chrome_detected_and_decoded(self, tmp_path):
        path = tmp_path / "t.json"
        sink = ChromeTraceSink(path)
        sink.on_event(Event(SPAN, "diffuse", 2.0, dur=0.5, cat="phase",
                            rank=1, step=3))
        sink.close()
        (ev,) = load_events(path)
        assert ev.kind == SPAN and ev.name == "diffuse"
        assert ev.cat == "phase" and ev.rank == 1 and ev.step == 3
        assert ev.dur == pytest.approx(0.5)
