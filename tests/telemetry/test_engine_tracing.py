"""Engine/backed tracing integration: phase spans feed PhaseMetrics
through the sink view, golden traces stay bitwise identical with tracing
on, and the off-by-default null tracer stays cheap."""

import time

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.telemetry import NULL_TRACER, RingBufferSink, Tracer

from tests.golden.test_golden_traces import (
    assert_exact,
    load_trace,
    make_params,
)

STATE_FIELDS = (
    "epi_state", "epi_timer", "virions", "chemokine",
    "tcell", "tcell_tissue_time", "tcell_bound_time",
)


def small_params(steps=10):
    return SimCovParams.fast_test(dim=(32, 32), num_steps=steps)


class TestEngineWiring:
    def test_default_is_null_tracer(self):
        sim = SequentialSimCov(small_params(), seed=1)
        assert sim.engine.tracer is NULL_TRACER
        assert sim.backend.tracer is NULL_TRACER

    def test_phase_spans_and_metrics_view(self):
        """With tracing on, phase timings flow tracer → sink → metrics:
        one span stream feeds both surfaces, and they agree."""
        ring = RingBufferSink()
        sim = SequentialSimCov(
            small_params(), seed=1, tracer=Tracer(sinks=[ring])
        )
        sim.run(5)
        phase_spans = ring.spans("phase")
        step_spans = ring.spans("step")
        assert len(step_spans) == 5
        assert len(phase_spans) == 5 * 13  # canonical 13-phase schedule
        metrics = sim.engine.metrics
        executed = [e for e in phase_spans if not e.attrs.get("skipped")]
        assert sum(metrics.calls.values()) == len(executed)
        assert metrics.total_seconds() == pytest.approx(
            sum(e.dur for e in executed)
        )

    def test_gating_gauge_emitted_every_step(self):
        ring = RingBufferSink()
        sim = SequentialSimCov(
            small_params(), seed=1, tracer=Tracer(sinks=[ring])
        )
        sim.run(4)
        occupancy = ring.values("active_voxels")
        assert len(occupancy) == 4
        assert all(v >= 0 for v in occupancy)


class TestGoldenIdentityWithTracing:
    def test_sequential_golden_bitwise_with_tracing(self):
        config, golden = load_trace("trace_2d")
        sim = SequentialSimCov(
            make_params(config), seed=config["seed"],
            tracer=Tracer(sinks=[RingBufferSink()]),
        )
        sim.run(config["steps"])
        assert_exact(sim.series, golden, "trace_2d/traced")

    def test_traced_fields_match_untraced(self):
        params = small_params(steps=12)
        ref = SequentialSimCov(params, seed=3)
        ref.run(12)
        traced = SequentialSimCov(
            params, seed=3, tracer=Tracer(sinks=[RingBufferSink()])
        )
        traced.run(12)
        for name in STATE_FIELDS:
            np.testing.assert_array_equal(
                traced.gather_field(name), ref.gather_field(name), err_msg=name
            )


class TestOverheadSmoke:
    def test_null_tracer_overhead_within_budget(self):
        """Smoke-level bound: the default (null-tracer) run must not be
        measurably slower than the same run — the guard is one branch per
        phase.  A generous 1.5x budget keeps this robust to CI noise
        while still catching an accidentally-always-on tracer."""
        params = small_params(steps=30)

        def wall(tracer):
            sim = SequentialSimCov(params, seed=5, tracer=tracer)
            t0 = time.perf_counter()
            sim.run(30)
            return time.perf_counter() - t0

        wall(None)  # warm caches
        untraced = min(wall(None) for _ in range(3))
        traced = min(wall(Tracer(sinks=[RingBufferSink()])) for _ in range(3))
        # Real tracing may cost something, but must stay in smoke range.
        assert traced < untraced * 1.5 + 0.05
