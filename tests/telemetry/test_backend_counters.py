"""Backend-specific telemetry: gating gauges and comm counters from the
PGAS and GPU-cluster backends."""

from repro.core.params import SimCovParams
from repro.simcov_cpu.simulation import SimCovCPU
from repro.simcov_gpu.simulation import SimCovGPU
from repro.telemetry import RingBufferSink, Tracer


def small_params(steps=6):
    return SimCovParams.fast_test(dim=(32, 32), num_steps=steps)


class TestPgasTelemetry:
    def test_comm_counters_and_gating_gauge(self):
        ring = RingBufferSink()
        sim = SimCovCPU(
            small_params(), nranks=4, seed=2, tracer=Tracer(sinks=[ring])
        )
        sim.run(6)
        halo = [e for e in ring.events if e.name == "halo_bytes"]
        rpcs = [e for e in ring.events if e.name == "rpcs"]
        occ = [e for e in ring.events if e.name == "active_voxels"]
        assert len(halo) == 6 and len(rpcs) == 6 and len(occ) == 6
        assert all(e.cat == "comm" for e in halo + rpcs)
        # The ghost refresh moves bytes every step.
        assert sum(e.value for e in halo) > 0
        # The per-rank occupancy rides along as a span attribute.
        assert all(len(e.attrs["per_rank"]) == 4 for e in occ)


class TestGpuTelemetry:
    def test_gating_gauge_tags_tiling(self):
        ring = RingBufferSink()
        sim = SimCovGPU(
            small_params(), num_devices=2, seed=2, tracer=Tracer(sinks=[ring])
        )
        sim.run(6)
        occ = [e for e in ring.events if e.name == "active_voxels"]
        assert len(occ) == 6
        assert all(e.cat == "gating" for e in occ)
        assert all("tiling" in e.attrs for e in occ)
        assert all(len(e.attrs["per_device"]) == 2 for e in occ)
