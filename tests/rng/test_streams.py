"""Tests for VoxelRNG: stream separation and decomposition independence."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.rng.streams import Stream, VoxelRNG


class TestVoxelRNG:
    def test_stateless_repeatability(self):
        rng = VoxelRNG(seed=9)
        keys = np.arange(64)
        a = rng.uniform(Stream.INFECTION, 5, keys)
        b = rng.uniform(Stream.INFECTION, 5, keys)
        np.testing.assert_array_equal(a, b)

    def test_streams_independent(self):
        rng = VoxelRNG(seed=9)
        keys = np.arange(10_000)
        a = rng.uniform(Stream.INFECTION, 0, keys)
        b = rng.uniform(Stream.TCELL_DIRECTION, 0, keys)
        assert not np.array_equal(a, b)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.03

    def test_steps_independent(self):
        rng = VoxelRNG(seed=9)
        keys = np.arange(10_000)
        a = rng.uniform(Stream.INFECTION, 0, keys)
        b = rng.uniform(Stream.INFECTION, 1, keys)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.03

    def test_seeds_independent(self):
        keys = np.arange(10_000)
        a = VoxelRNG(1).uniform(Stream.INFECTION, 0, keys)
        b = VoxelRNG(2).uniform(Stream.INFECTION, 0, keys)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.03

    def test_bids_never_zero(self):
        rng = VoxelRNG(seed=0)
        bids = rng.bids(0, np.arange(1_000_000))
        assert bids.dtype == np.uint64
        assert bids.min() >= 1

    def test_bids_effectively_tie_free(self):
        """Paper §3.1: true ties are 'so unlikely that it is practical to
        ignore them'.  Check no collision in a million draws."""
        rng = VoxelRNG(seed=0)
        bids = rng.bids(3, np.arange(1_000_000))
        assert len(np.unique(bids)) == len(bids)


class TestDecompositionIndependence:
    """The property that makes exact cross-implementation equality possible:
    randomness depends only on (seed, stream, step, global key), never on
    which subset of keys is evaluated together."""

    @given(
        split=st.integers(min_value=1, max_value=99),
        step=st.integers(min_value=0, max_value=10_000),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_split_evaluation_matches_whole(self, split, step, seed):
        rng = VoxelRNG(seed)
        keys = np.arange(100)
        whole = rng.uniform(Stream.TCELL_DIRECTION, step, keys)
        left = rng.uniform(Stream.TCELL_DIRECTION, step, keys[:split])
        right = rng.uniform(Stream.TCELL_DIRECTION, step, keys[split:])
        np.testing.assert_array_equal(whole, np.concatenate([left, right]))

    @given(perm_seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_permutation_invariance(self, perm_seed):
        rng = VoxelRNG(7)
        keys = np.arange(256)
        order = np.random.default_rng(perm_seed).permutation(256)
        direct = rng.randint(Stream.TCELL_DIRECTION, 4, keys, 8)
        permuted = rng.randint(Stream.TCELL_DIRECTION, 4, keys[order], 8)
        np.testing.assert_array_equal(direct[order], permuted)
