"""Unit tests for the counter-based hash core."""

import numpy as np
import pytest

from repro.rng.philox import hash_u64, counter_hash


class TestHashU64:
    def test_scalar_deterministic(self):
        assert hash_u64(42) == hash_u64(42)

    def test_array_matches_scalar(self):
        xs = np.arange(100, dtype=np.uint64)
        batch = hash_u64(xs)
        for i in (0, 1, 50, 99):
            assert batch[i] == hash_u64(int(xs[i]))

    def test_distinct_inputs_distinct_outputs(self):
        xs = np.arange(100_000, dtype=np.uint64)
        out = hash_u64(xs)
        assert len(np.unique(out)) == len(xs)

    def test_shape_preserved(self):
        xs = np.zeros((3, 4, 5), dtype=np.uint64)
        assert hash_u64(xs).shape == (3, 4, 5)

    def test_negative_python_int_accepted(self):
        # Two's-complement folding, no exception.
        a = hash_u64(-1)
        b = hash_u64(np.uint64(0xFFFFFFFFFFFFFFFF))
        assert a == b

    def test_avalanche_single_bit_flip(self):
        """Flipping one input bit flips ~half the output bits."""
        rng = np.random.default_rng(0)
        base = rng.integers(0, 2**63, size=200, dtype=np.uint64)
        total_flipped = 0
        trials = 0
        for bit in range(0, 64, 7):
            flipped = base ^ np.uint64(1 << bit)
            d = hash_u64(base) ^ hash_u64(flipped)
            total_flipped += int(np.unpackbits(d.view(np.uint8)).sum())
            trials += len(base) * 64
        frac = total_flipped / trials
        assert 0.45 < frac < 0.55

    def test_output_bits_unbiased(self):
        xs = np.arange(10_000, dtype=np.uint64)
        bits = np.unpackbits(hash_u64(xs).view(np.uint8))
        frac = bits.mean()
        assert 0.49 < frac < 0.51


class TestCounterHash:
    def test_deterministic(self):
        keys = np.arange(10)
        a = counter_hash(7, 1, 100, keys)
        b = counter_hash(7, 1, 100, keys)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("field", ["seed", "stream", "step"])
    def test_each_field_changes_output(self, field):
        keys = np.arange(1000)
        kwargs = dict(seed=3, stream=5, step=9)
        a = counter_hash(kwargs["seed"], kwargs["stream"], kwargs["step"], keys)
        kwargs[field] += 1
        b = counter_hash(kwargs["seed"], kwargs["stream"], kwargs["step"], keys)
        # Essentially all words should differ.
        assert (a != b).mean() > 0.999

    def test_key_order_independence(self):
        """The hash of a key does not depend on its position in the array."""
        keys = np.array([11, 22, 33, 44])
        fwd = counter_hash(1, 2, 3, keys)
        rev = counter_hash(1, 2, 3, keys[::-1])
        np.testing.assert_array_equal(fwd, rev[::-1])

    def test_sequential_keys_uncorrelated(self):
        """Consecutive voxel ids must not produce correlated uniforms."""
        keys = np.arange(50_000)
        u = (counter_hash(0, 1, 0, keys) >> np.uint64(11)).astype(np.float64) * 2.0**-53
        # Lag-1 autocorrelation of the sequence.
        x = u - u.mean()
        r1 = float(np.dot(x[:-1], x[1:]) / np.dot(x, x))
        assert abs(r1) < 0.02

    def test_scalar_key(self):
        out = counter_hash(1, 2, 3, 4)
        assert out.shape == ()
