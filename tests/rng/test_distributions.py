"""Unit + statistical tests for hash-backed distributions."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.rng.philox import counter_hash
from repro.rng import distributions as dist


@pytest.fixture
def words():
    return counter_hash(12345, 1, 0, np.arange(200_000))


class TestUniform01:
    def test_range(self, words):
        u = dist.uniform01(words)
        assert u.min() >= 0.0
        assert u.max() < 1.0

    def test_mean_and_var(self, words):
        u = dist.uniform01(words)
        assert abs(u.mean() - 0.5) < 0.005
        assert abs(u.var() - 1 / 12) < 0.005

    def test_ks_against_uniform(self, words):
        u = dist.uniform01(words[:5000])
        stat, pvalue = sps.kstest(u, "uniform")
        assert pvalue > 0.001


class TestBernoulli:
    @pytest.mark.parametrize("p", [0.0, 0.1, 0.5, 0.9, 1.0])
    def test_rate(self, words, p):
        hits = dist.bernoulli(words, p)
        assert abs(hits.mean() - p) < 0.01

    def test_array_p(self, words):
        p = np.linspace(0, 1, words.size)
        hits = dist.bernoulli(words, p)
        # Low-p half should hit much less often than high-p half.
        half = words.size // 2
        assert hits[:half].mean() < 0.3 < hits[half:].mean()


class TestRandintBelow:
    @pytest.mark.parametrize("n", [1, 2, 8, 26])
    def test_range_and_uniformity(self, words, n):
        r = dist.randint_below(words, n)
        assert r.min() >= 0
        assert r.max() < n
        counts = np.bincount(r, minlength=n)
        expected = words.size / n
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected) + 5)

    def test_rejects_nonpositive(self, words):
        with pytest.raises(ValueError):
            dist.randint_below(words, 0)


class TestPoisson:
    @pytest.mark.parametrize("mu", [0.5, 4.0, 60.0])
    def test_moments(self, words, mu):
        x = dist.poisson(words[:50_000], mu)
        assert abs(x.mean() - mu) < 0.05 * max(mu, 1)
        assert abs(x.var() - mu) < 0.1 * max(mu, 1)

    def test_nonnegative_integers(self, words):
        x = dist.poisson(words[:1000], 3.0)
        assert x.dtype == np.int64
        assert x.min() >= 0

    def test_array_mu(self, words):
        mu = np.full(1000, 2.0)
        mu[500:] = 20.0
        x = dist.poisson(words[:1000], mu)
        assert x[:500].mean() < x[500:].mean()


class TestExponential:
    def test_mean(self, words):
        x = dist.exponential(words, 7.0)
        assert abs(x.mean() - 7.0) < 0.2

    def test_positive_finite(self, words):
        x = dist.exponential(words, 1.0)
        assert np.all(np.isfinite(x))
        assert x.min() >= 0.0
