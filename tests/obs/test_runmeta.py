"""Run-metadata stamping and the cross-host comparability rule."""

from repro.obs.runmeta import compatible, format_meta, git_sha, run_metadata


class TestRunMetadata:
    def test_standard_keys(self):
        meta = run_metadata()
        assert meta["host"]
        assert meta["cpu_count"] >= 1
        assert meta["python"].count(".") == 2
        assert "recorded_at" in meta
        assert "config" not in meta

    def test_config_and_extra_ride_along(self):
        meta = run_metadata(config="small_2d", nranks=4)
        assert meta["config"] == "small_2d"
        assert meta["nranks"] == 4

    def test_git_sha_cached_and_stable(self):
        assert git_sha() == git_sha()


class TestCompatible:
    def test_same_host_same_cores_ok(self):
        a = {"host": "vm", "cpu_count": 4}
        assert compatible(a, dict(a)) is None

    def test_host_mismatch_named(self):
        reason = compatible(
            {"host": "laptop", "cpu_count": 4},
            {"host": "ci", "cpu_count": 4},
        )
        assert "host differs" in reason

    def test_cpu_count_mismatch_named(self):
        reason = compatible(
            {"host": "vm", "cpu_count": 1},
            {"host": "vm", "cpu_count": 16},
        )
        assert "cpu_count differs" in reason

    def test_missing_meta_is_comparable_with_shrug(self):
        assert compatible(None, {"host": "vm"}) is None
        assert compatible({}, {}) is None
        # A missing key on one side never counts as a mismatch.
        assert compatible({"host": "vm"}, {"cpu_count": 4}) is None

    def test_python_version_does_not_gate(self):
        # Only host/cpu_count decide comparability.
        reason = compatible(
            {"host": "vm", "cpu_count": 1, "python": "3.11.7"},
            {"host": "vm", "cpu_count": 1, "python": "3.12.1"},
        )
        assert reason is None


class TestFormatMeta:
    def test_one_line_rendering(self):
        text = format_meta({
            "host": "vm", "cpu_count": 2, "python": "3.11.7",
            "git_sha": "abc1234", "config": "small_2d",
        })
        assert text == (
            "host=vm cpus=2 py=3.11.7 git=abc1234 config=small_2d"
        )

    def test_missing_meta(self):
        assert format_meta(None) == "(no run metadata)"
        assert format_meta({}) == "(no run metadata)"
