"""Engine wiring: the step loop feeds the registry, and — the acceptance
bar for default-on metrics — simulation state is bitwise identical with
the registry enabled or disabled."""

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.obs.registry import MetricsRegistry, set_registry

FIELDS = ("epi_state", "epi_timer", "virions", "chemokine", "tcell")


@pytest.fixture
def params():
    return SimCovParams.fast_test(dim=(32, 32), num_infections=1,
                                  num_steps=6)


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    prev = set_registry(reg)
    yield reg
    set_registry(prev)


class TestEngineWiring:
    def test_step_loop_feeds_registry(self, params, registry):
        sim = SequentialSimCov(params, seed=3)
        sim.run(6)
        fams = registry.families()
        steps = fams["simcov_steps_total"].series[()]
        assert steps.value == 6.0
        step_hist = fams["simcov_step_seconds"].series[()]
        assert step_hist.count == 6
        assert step_hist.sum > 0.0
        # Every scheduled phase has a labeled histogram with 6 observations.
        phase_fam = fams["simcov_phase_seconds"]
        names = {dict(key)["phase"] for key in phase_fam.series}
        assert names == {ph.name for ph in sim.engine.schedule}
        assert "diffuse" in names and "reduce" in names
        for inst in phase_fam.series.values():
            assert inst.count == 6
        # Active-voxel gauge carries the last step's live-set size.
        active = fams["simcov_active_voxels"].series[()]
        assert active.value == sim.step_work[-1]["active_voxels"]

    def test_gate_skips_counted(self, params, registry):
        sim = SequentialSimCov(params, seed=3)
        sim.run(6)
        skips = registry.families()["simcov_phase_skips_total"].series
        total_skips = sum(inst.value for inst in skips.values())
        recorded = sum(
            sim.engine.metrics.skips.values()
        ) if hasattr(sim.engine.metrics, "skips") else None
        if recorded is not None:
            assert total_skips == recorded

    def test_explicit_registry_overrides_global(self, params):
        mine = MetricsRegistry()
        sim = SequentialSimCov(params, seed=3)
        sim.engine.__class__(sim.engine.backend, registry=mine)
        assert "simcov_steps_total" in mine.families()


class TestBitwiseInvariance:
    def test_state_identical_with_metrics_on_and_off(self, params):
        prev = set_registry(MetricsRegistry(enabled=True))
        try:
            on = SequentialSimCov(params, seed=11)
            on.run(6)
            set_registry(MetricsRegistry(enabled=False))
            off = SequentialSimCov(params, seed=11)
            off.run(6)
        finally:
            set_registry(prev)
        for name in FIELDS:
            np.testing.assert_array_equal(
                getattr(on.block, name), getattr(off.block, name),
                err_msg=f"field {name} diverged with metrics toggled",
            )
        assert len(on.series) == len(off.series)
        assert all(on.series[i] == off.series[i]
                   for i in range(len(on.series)))
