"""bench report / bench diff: flattening, direction, the regression
threshold, and the cross-host refusal."""

import pytest

from repro.obs.bench import (
    CrossHostError,
    bench_diff,
    flatten_metrics,
    format_diff,
    format_report,
)

META_VM = {"host": "vm", "cpu_count": 1}


def payload(steps_per_sec=100.0, wall=1.0, meta=META_VM):
    p = {
        "cpu_count": 1,
        "configs": {
            "small_2d": {
                "gated": {
                    "steps_per_sec": steps_per_sec,
                    "wall_seconds": wall,
                    "phase_seconds": {"diffuse": 0.5},  # skipped segment
                },
                "speedup": 2.0,
                "bitwise_identical": True,  # bool: never a metric
            }
        },
    }
    if meta is not None:
        p["meta"] = dict(meta)
    return p


class TestFlatten:
    def test_directions_and_skips(self):
        flat = flatten_metrics(payload())
        assert flat["configs.small_2d.gated.steps_per_sec"] == (
            100.0, "higher",
        )
        assert flat["configs.small_2d.gated.wall_seconds"] == (1.0, "lower")
        assert flat["configs.small_2d.speedup"] == (2.0, "higher")
        # Noisy per-phase breakdowns and booleans never become gates.
        assert not any("phase_seconds" in k for k in flat)
        assert not any("bitwise" in k for k in flat)
        assert not any(k == "cpu_count" for k in flat)


class TestDiff:
    def test_regression_flagged_beyond_threshold(self):
        diff = bench_diff(payload(steps_per_sec=50.0), payload(),
                          threshold=0.15)
        keys = {r["key"] for r in diff["regressions"]}
        assert "configs.small_2d.gated.steps_per_sec" in keys
        (row,) = [r for r in diff["rows"]
                  if r["key"].endswith("steps_per_sec")]
        assert row["change"] == pytest.approx(-0.5)

    def test_improvement_is_positive_both_directions(self):
        diff = bench_diff(payload(steps_per_sec=200.0, wall=0.5), payload())
        by_key = {r["key"]: r for r in diff["rows"]}
        assert by_key["configs.small_2d.gated.steps_per_sec"][
            "change"
        ] == pytest.approx(1.0)
        # Halved wall time is a +50% improvement after normalization.
        assert by_key["configs.small_2d.gated.wall_seconds"][
            "change"
        ] == pytest.approx(0.5)
        assert diff["regressions"] == []

    def test_within_threshold_not_flagged(self):
        diff = bench_diff(payload(steps_per_sec=90.0), payload(),
                          threshold=0.15)
        assert diff["regressions"] == []

    def test_cross_host_refused(self):
        other = payload(meta={"host": "laptop", "cpu_count": 8})
        with pytest.raises(CrossHostError, match="--allow-cross-host"):
            bench_diff(other, payload())

    def test_cross_host_forced_warns(self):
        other = payload(meta={"host": "laptop", "cpu_count": 8})
        diff = bench_diff(other, payload(), allow_cross_host=True)
        assert "cross-host comparison forced" in diff["meta_warning"]

    def test_missing_meta_warns_but_compares(self):
        diff = bench_diff(payload(meta=None), payload())
        assert "lack run metadata" in diff["meta_warning"]
        assert diff["rows"]

    def test_missing_keys_listed(self):
        cur = payload()
        del cur["configs"]["small_2d"]["speedup"]
        diff = bench_diff(cur, payload())
        assert diff["missing"] == ["configs.small_2d.speedup"]

    def test_zero_previous_value(self):
        diff = bench_diff(payload(steps_per_sec=10.0),
                          payload(steps_per_sec=0.0))
        (row,) = [r for r in diff["rows"]
                  if r["key"].endswith("steps_per_sec")]
        assert row["change"] == float("inf")


class TestFormatting:
    def test_diff_table_flags_regressions(self):
        diff = bench_diff(payload(steps_per_sec=50.0), payload())
        text = format_diff(diff)
        assert "REGRESSION" in text
        assert "1 regression(s) beyond threshold" in text

    def test_diff_table_clean_run(self):
        text = format_diff(bench_diff(payload(), payload()))
        assert "no regressions beyond threshold" in text
        assert "REGRESSION" not in text

    def test_report_table(self):
        text = format_report(payload(), "bench.json")
        assert "bench.json" in text
        assert "host=vm" in text
        assert "configs.small_2d.gated.steps_per_sec" in text
