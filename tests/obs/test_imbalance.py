"""Imbalance-index math and the rolling monitor."""

import pytest

from repro.obs.imbalance import ImbalanceMonitor, imbalance_index


class TestIndex:
    def test_balanced_is_zero(self):
        assert imbalance_index([1.0, 1.0, 1.0]) == 0.0

    def test_one_rank_doing_everything(self):
        # max/mean - 1 with 4 ranks, one busy: 1.0/(0.25) - 1 = 3.
        assert imbalance_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(3.0)

    def test_degenerate_cases(self):
        assert imbalance_index([]) == 0.0
        assert imbalance_index([0.0, 0.0]) == 0.0
        assert imbalance_index([-1.0, -2.0]) == 0.0  # clamped to idle


class TestMonitor:
    def test_windowed_index_smooths(self):
        mon = ImbalanceMonitor(nranks=2, window=4)
        mon.observe(0, [1.0, 1.0])
        # One noisy step barely moves the windowed value.
        noisy = mon.observe(1, [2.0, 1.0])
        assert noisy == pytest.approx(3.0 / 2.5 - 1.0)
        # But the instantaneous history keeps the spike.
        assert mon.history[-1] == (1, pytest.approx(1.0 / 0.75 - 1.0))

    def test_window_forgets_old_steps(self):
        mon = ImbalanceMonitor(nranks=2, window=2)
        mon.observe(0, [5.0, 0.0])
        mon.observe(1, [1.0, 1.0])
        balanced = mon.observe(2, [1.0, 1.0])  # spike rolled out
        assert balanced == 0.0

    def test_max_rank_tracks_heaviest(self):
        mon = ImbalanceMonitor(nranks=3)
        mon.observe(0, [0.1, 0.9, 0.2])
        assert mon.max_rank == 1

    def test_summary(self):
        mon = ImbalanceMonitor(nranks=2)
        mon.observe(0, [1.0, 0.0])
        mon.observe(1, [1.0, 1.0])
        s = mon.summary()
        assert s["nranks"] == 2
        assert s["steps_observed"] == 2
        assert s["peak_index"] == pytest.approx(1.0)
        assert 0.0 < s["mean_index"] < 1.0

    def test_history_bounded(self):
        mon = ImbalanceMonitor(nranks=1, max_history=3)
        for step in range(10):
            mon.observe(step, [1.0])
        assert len(mon.history) == 3
        assert mon.history[0][0] == 7

    def test_validation(self):
        with pytest.raises(ValueError, match="nranks"):
            ImbalanceMonitor(nranks=0)
        mon = ImbalanceMonitor(nranks=2)
        with pytest.raises(ValueError, match="expected 2 busy values"):
            mon.observe(0, [1.0])
