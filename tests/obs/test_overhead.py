"""Metrics-overhead smoke (tier-1 lax bound).

The CI ``obs`` job runs ``python -m repro.obs.overhead --budget 0.03``
at real size; here the bound is deliberately loose so the fast suite
never flakes on a noisy shared box — this test's job is catching a
pathological regression (an accidental per-voxel observe), not holding
the 3% line.
"""

from repro.obs.overhead import measure_overhead
from repro.obs.registry import get_registry


def test_overhead_small_and_result_shape():
    result = measure_overhead(dim=(48, 48), steps=8, repeats=2)
    assert result["metrics_off_seconds"] > 0
    assert result["metrics_on_seconds"] > 0
    assert result["steps"] == 8 and result["dim"] == [48, 48]
    # Lax: anything under 50% at this tiny size is "not pathological";
    # a per-voxel mistake shows up as multiples, not percents.
    assert result["overhead_fraction"] < 0.5


def test_measure_restores_global_registry():
    before = get_registry()
    measure_overhead(dim=(32, 32), steps=2, repeats=1)
    assert get_registry() is before
