"""Registry semantics: instrument behavior, label handling, the
cardinality cap, the disabled (null-instrument) path, and thread safety
of the locked mutators."""

import threading

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    get_registry,
    set_registry,
)


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_accumulates(self, reg):
        c = reg.counter("steps_total", "steps")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_gauge_last_write_wins_and_inc(self, reg):
        g = reg.gauge("depth")
        g.set(7)
        g.set(3)
        assert g.value == 3.0
        g.inc(2)
        assert g.value == 5.0

    def test_same_name_and_labels_is_same_instrument(self, reg):
        a = reg.counter("hits", "h", path="/jobs")
        b = reg.counter("hits", "h", path="/jobs")
        assert a is b
        c = reg.counter("hits", "h", path="/metrics")
        assert c is not a

    def test_kind_mismatch_raises(self, reg):
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("x_total")


class TestHistogram:
    def test_boundary_value_lands_in_that_bucket(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        h.observe(2.0)  # exactly on a bound: le="2.0" bucket (inclusive)
        assert h.counts == [0, 1, 0, 0]
        assert h.cumulative() == [
            (1.0, 0), (2.0, 1), (4.0, 1), (float("inf"), 1),
        ]

    def test_overflow_goes_to_inf_bucket(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(1e9)
        assert h.counts == [0, 0, 1]
        assert h.cumulative()[-1] == (float("inf"), 1)
        assert h.sum == pytest.approx(1e9)
        assert h.count == 1

    def test_empty_histogram_cumulative_is_all_zero(self):
        h = Histogram(bounds=(0.5, 1.0))
        assert h.cumulative() == [(0.5, 0), (1.0, 0), (float("inf"), 0)]

    def test_explicit_trailing_inf_is_stripped(self):
        h = Histogram(bounds=(1.0, float("inf")))
        assert h.bounds == (1.0,)
        assert len(h.counts) == 2

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(bounds=())

    def test_exact_sum_and_count(self, reg):
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)


class TestCardinalityCap:
    def test_overflow_folds_into_shared_series(self):
        reg = MetricsRegistry(max_label_sets=2)
        a = reg.counter("c_total", rank=0)
        b = reg.counter("c_total", rank=1)
        over1 = reg.counter("c_total", rank=2)
        over2 = reg.counter("c_total", rank=3)
        assert a is not b
        assert over1 is over2  # both folded into {"overflow": "true"}
        assert reg.dropped_series == 2
        fam = reg.families()["c_total"]
        assert (("overflow", "true"),) in fam.series
        assert len(fam.series) == 3  # 2 real + 1 overflow

    def test_dropped_series_rendered(self):
        reg = MetricsRegistry(max_label_sets=1)
        reg.counter("c_total", k=0)
        reg.counter("c_total", k=1)
        text = reg.render_prometheus()
        assert "simcov_obs_dropped_series_total 1" in text


class TestDisabledRegistry:
    def test_null_instruments_are_shared_noops(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("a_total")
        g = reg.gauge("b")
        h = reg.histogram("c_seconds")
        assert c is NULL_COUNTER and g is NULL_COUNTER and h is NULL_COUNTER
        c.inc()
        g.set(5)
        h.observe(1.0)
        assert c.value == 0.0 and h.count == 0
        assert reg.snapshot() == {}
        assert reg.render_prometheus() == ""


class TestGlobalRegistry:
    def test_swap_and_restore(self):
        fresh = MetricsRegistry()
        prev = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(prev)
        assert get_registry() is prev

    def test_reset_drops_families(self):
        reg = MetricsRegistry(max_label_sets=1)
        reg.counter("a_total").inc()
        reg.counter("a_total", k=1)  # overflow
        assert reg.dropped_series == 1
        reg.reset()
        assert reg.families() == {}
        assert reg.dropped_series == 0


class TestThreadSafety:
    N_THREADS = 8
    N_OPS = 2000

    def _hammer(self, fn):
        barrier = threading.Barrier(self.N_THREADS)

        def work():
            barrier.wait()
            for _ in range(self.N_OPS):
                fn()

        threads = [threading.Thread(target=work) for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_inc_loses_no_updates(self, reg):
        c = reg.counter("hammer_total")
        self._hammer(c.inc)
        assert c.value == self.N_THREADS * self.N_OPS

    def test_histogram_observe_exact_under_contention(self, reg):
        h = reg.histogram("hammer_seconds", buckets=(0.5,))
        self._hammer(lambda: h.observe(0.25))
        total = self.N_THREADS * self.N_OPS
        assert h.count == total
        assert h.counts == [total, 0]
        assert h.sum == pytest.approx(0.25 * total)

    def test_concurrent_getters_one_series(self, reg):
        out = []
        self._hammer(lambda: out.append(reg.counter("get_total", k="v")))
        assert len({id(c) for c in out}) == 1


def test_default_buckets_cover_slo_range():
    assert DEFAULT_BUCKETS[0] <= 1e-4
    assert DEFAULT_BUCKETS[-1] >= 10.0
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
