"""Prometheus text-exposition tests: escaping, value formatting, the
histogram ladder, and byte-for-byte determinism."""

import pytest

from repro.obs.prometheus import (
    CONTENT_TYPE,
    escape_label_value,
    format_value,
    render,
)
from repro.obs.registry import MetricsRegistry


class TestEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_plain_passthrough(self):
        assert escape_label_value("small_2d") == "small_2d"


class TestFormatValue:
    @pytest.mark.parametrize("value,text", [
        (42.0, "42"),
        (0.0, "0"),
        (-3.0, "-3"),
        (0.25, "0.25"),
        (float("nan"), "NaN"),
        (float("inf"), "+Inf"),
        (float("-inf"), "-Inf"),
    ])
    def test_cases(self, value, text):
        assert format_value(value) == text

    def test_huge_integral_keeps_float_repr(self):
        # Beyond 2^53-ish, int conversion would fabricate precision.
        assert format_value(1e18) == repr(1e18)


class TestRender:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("simcov_steps_total", "Steps executed").inc(5)
        reg.gauge("simcov_active_voxels", "Active voxels").set(1024)
        text = render(reg)
        assert "# HELP simcov_steps_total Steps executed" in text
        assert "# TYPE simcov_steps_total counter" in text
        assert "simcov_steps_total 5" in text
        assert "# TYPE simcov_active_voxels gauge" in text
        assert "simcov_active_voxels 1024" in text
        assert text.endswith("\n")

    def test_histogram_cumulative_ladder(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0),
                          phase="diffuse")
        h.observe(0.05)
        h.observe(0.5)
        h.observe(50.0)
        text = render(reg)
        assert 'lat_seconds_bucket{phase="diffuse",le="0.1"} 1' in text
        assert 'lat_seconds_bucket{phase="diffuse",le="1"} 2' in text
        assert 'lat_seconds_bucket{phase="diffuse",le="+Inf"} 3' in text
        assert 'lat_seconds_sum{phase="diffuse"} 50.55' in text
        assert 'lat_seconds_count{phase="diffuse"} 3' in text

    def test_empty_histogram_still_renders_full_ladder(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds", buckets=(0.5,))
        text = render(reg)
        assert 'h_seconds_bucket{le="0.5"} 0' in text
        assert 'h_seconds_bucket{le="+Inf"} 0' in text
        assert "h_seconds_count 0" in text

    def test_deterministic_sort_and_repeatability(self):
        reg = MetricsRegistry()
        reg.counter("z_total", rank=1).inc()
        reg.counter("z_total", rank=0).inc()
        reg.counter("a_total").inc()
        text = render(reg)
        assert text == render(reg)  # same state, same bytes
        # Families by name, series by label tuple.
        assert text.index("a_total") < text.index("z_total")
        assert text.index('rank="0"') < text.index('rank="1"')

    def test_help_defaults_to_name(self):
        reg = MetricsRegistry()
        reg.counter("nameless_total").inc()
        assert "# HELP nameless_total nameless_total" in render(reg)

    def test_empty_registry_renders_empty(self):
        assert render(MetricsRegistry()) == ""


def test_content_type_is_prometheus_0_0_4():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"
