"""Metrics-snapshot sink: interval cadence, final flush, and coexistence
with events in one JSONL artifact."""

import json

from repro.obs.registry import MetricsRegistry
from repro.obs.snapshot import MetricsSnapshotSink, read_snapshots
from repro.telemetry import JsonlSink, Tracer, read_jsonl
from repro.telemetry.events import SPAN, Event


def step_event(step):
    return Event(SPAN, "step", float(step), dur=0.01, cat="step", step=step)


class TestCadence:
    def test_snapshot_every_interval(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        records = []
        sink = MetricsSnapshotSink(records.append, interval=3, registry=reg)
        for step in range(7):
            sink.on_event(step_event(step))
        assert sink.snapshots_written == 2  # after steps 3 and 6
        assert [r["step"] for r in records] == [2, 5]
        assert records[0]["kind"] == "metrics"
        assert records[0]["metrics"]["c_total"]["series"][0]["value"] == 1.0

    def test_non_step_events_ignored(self):
        records = []
        sink = MetricsSnapshotSink(records.append, interval=1,
                                   registry=MetricsRegistry())
        sink.on_event(Event(SPAN, "diffuse", 0.0, dur=0.1, cat="phase"))
        assert records == []

    def test_final_flush_for_short_runs(self):
        records = []
        sink = MetricsSnapshotSink(records.append, interval=50,
                                   registry=MetricsRegistry())
        sink.on_event(step_event(0))
        sink.close()
        assert sink.snapshots_written == 1

    def test_no_double_snapshot_when_interval_aligned(self):
        records = []
        sink = MetricsSnapshotSink(records.append, interval=2,
                                   registry=MetricsRegistry())
        for step in range(4):
            sink.on_event(step_event(step))
        sink.close()
        assert sink.snapshots_written == 2  # steps 2 and 4; close adds none

    def test_empty_run_still_records_vitals(self):
        records = []
        sink = MetricsSnapshotSink(records.append, interval=10,
                                   registry=MetricsRegistry())
        sink.close()
        assert sink.snapshots_written == 1


class TestFileModes:
    def test_path_mode_appends_jsonl(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        reg = MetricsRegistry()
        reg.gauge("g").set(7)
        sink = MetricsSnapshotSink(path, interval=1, registry=reg)
        sink.on_event(step_event(0))
        sink.close()
        records = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert [r["kind"] for r in records] == ["metrics"]
        assert records[0]["metrics"]["g"]["series"][0]["value"] == 7.0

    def test_shares_artifact_with_events(self, tmp_path):
        """One JSONL file carries the meta header, events, and metrics
        snapshots; each reader sees only its record kind."""
        path = tmp_path / "trace.jsonl"
        reg = MetricsRegistry()
        reg.counter("simcov_steps_total").inc(4)
        jsonl = JsonlSink(path)
        snap = MetricsSnapshotSink(jsonl.write_record, interval=100,
                                   registry=reg)
        tracer = Tracer(sinks=[snap, jsonl])
        tracer.emit_span("step", 0.0, 0.01, cat="step", step=0)
        tracer.close()
        events = read_jsonl(path)
        assert [e.name for e in events] == ["step"]
        snaps = read_snapshots(path)
        assert len(snaps) == 1
        assert snaps[0]["metrics"]["simcov_steps_total"]["series"][0][
            "value"
        ] == 4.0
