"""Tests for the automated paper-vs-measured report."""

import pytest

pytestmark = pytest.mark.slow

from repro.experiments.report import generate_report, write_report


@pytest.fixture(scope="module")
def report_text():
    return generate_report(fast=True)


class TestReport:
    def test_all_sections_present(self, report_text):
        for section in (
            "Table 1", "Fig 4", "Fig 5 / Table 2", "Fig 6", "Fig 7", "Fig 8"
        ):
            assert section in report_text, section

    def test_paper_values_quoted(self, report_text):
        assert "4.98" in report_text  # strong-scaling base paper speedup
        assert "11.97" in report_text  # FOI paper speedup
        assert "99.68" in report_text  # Table 2 paper agreement

    def test_variants_listed(self, report_text):
        for label in ("Unoptimized", "Fast Reduction", "Memory Tiling",
                      "Combined"):
            assert label in report_text

    def test_markdown_tables_well_formed(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|") and "---" not in line:
                # Consistent column separators.
                assert line.count("|") >= 3

    def test_write_report(self, tmp_path, monkeypatch):
        import repro.experiments.report as rep

        monkeypatch.setattr(
            rep, "generate_report", lambda fast=False: "# stub\n"
        )
        path = write_report(str(tmp_path / "out" / "REPORT.md"))
        with open(path) as fh:
            assert fh.read() == "# stub\n"
