"""Tests for the experiment harness (fast configurations)."""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.core.params import SimCovParams
from repro.experiments.configs import TABLE1, format_table1
from repro.experiments.correctness import format_table2, run_correctness
from repro.experiments.profiling import format_fig4, run_profiling
from repro.experiments.scaling import (
    format_scaling,
    run_foi_scaling,
    run_strong_scaling,
    run_weak_scaling,
    validate_direct,
)
from repro.simcov_gpu.variants import GpuVariant


class TestTable1:
    def test_paper_values(self):
        strong = TABLE1["strong"]
        assert strong.min_dim == (10_000, 10_000, 1)
        assert strong.units_sequence() == [
            (4, 128), (8, 256), (16, 512), (32, 1024), (64, 2048)
        ]
        weak = TABLE1["weak"]
        assert weak.foi_sequence() == [16, 32, 64, 128, 256]
        dims = weak.dims_sequence()
        assert dims[0] == (10_000, 10_000)
        assert dims[-1] == (40_000, 40_000)
        assert len(dims) == 5
        foi = TABLE1["foi"]
        assert foi.foi_sequence() == [64, 128, 256, 512, 1024]

    def test_format_renders_all_rows(self):
        text = format_table1()
        for name in ("Correctness", "Strong", "Weak", "FOI"):
            assert name in text
        assert "{64,2048}" in text


class TestCorrectness:
    @pytest.fixture(scope="class")
    def result(self):
        params = SimCovParams.fast_test(
            dim=(32, 32), num_infections=2, num_steps=180
        )
        return run_correctness(params, trials=3, nranks=2, num_devices=2)

    def test_high_peak_agreement(self, result):
        """The §4.1 claim: statistics agree across implementations."""
        for row in result.table2.values():
            assert row["agree_pct"] > 80.0

    def test_bands_contain_mean(self, result):
        cm, cmin, cmax, gm, gmin, gmax = result.fig5_bands("virions_total")
        assert (cmin <= cm + 1e-9).all() and (cm <= cmax + 1e-9).all()
        assert (gmin <= gm + 1e-9).all() and (gm <= gmax + 1e-9).all()

    def test_curves_overlap(self, result):
        """CPU and GPU mean trajectories track each other (Fig 5)."""
        cm, *_ , gm, _, _ = (*result.fig5_bands("virions_total"),)
        # Correlation of the two mean curves is high.
        assert np.corrcoef(cm, gm)[0, 1] > 0.95

    def test_table_renders(self, result):
        text = format_table2(result)
        assert "Virus" in text and "paper" in text


class TestProfiling:
    @pytest.fixture(scope="class")
    def rows(self):
        params = SimCovParams.fast_test(
            dim=(64, 64), num_infections=1, num_steps=30
        )
        return run_profiling(params, num_devices=2)

    def test_four_bars(self, rows):
        assert [r.variant for r in rows] == list(GpuVariant)

    def test_fig4_shape(self, rows):
        by = {r.variant: r for r in rows}
        unopt = by[GpuVariant.UNOPTIMIZED]
        comb = by[GpuVariant.COMBINED]
        # Reductions dominate unoptimized; combined is fastest overall.
        assert unopt.reduce_seconds > unopt.update_seconds
        assert comb.total_seconds <= min(r.total_seconds for r in rows)
        assert by[GpuVariant.FAST_REDUCTION].reduce_seconds < unopt.reduce_seconds
        assert by[GpuVariant.MEMORY_TILING].update_seconds <= unopt.update_seconds

    def test_scaled_to_paper_magnitude(self, rows):
        comb = next(r for r in rows if r.variant is GpuVariant.COMBINED)
        assert comb.total_seconds == pytest.approx(70.0)

    def test_format(self, rows):
        assert "Unoptimized" in format_fig4(rows)


class TestScaling:
    #: Shared fast settings: fewer time samples (the run length must stay
    #: the paper's — activity growth is physical, radius = speed * steps).
    FAST = dict(samples=16)

    @pytest.fixture(scope="class")
    def strong(self):
        return run_strong_scaling(**self.FAST)

    def test_strong_speedup_declines(self, strong):
        s = [r.speedup for r in strong]
        assert s[0] > s[-1]
        assert s[0] > 2.0  # GPU clearly wins at 4 devices

    def test_strong_cpu_near_ideal(self, strong):
        assert strong[-1].cpu_seconds < strong[0].cpu_seconds / 8

    def test_strong_gpu_saturates(self, strong):
        assert strong[-1].gpu_seconds > strong[0].gpu_seconds / 6

    def test_weak_gpu_flat_after_rise(self):
        rows = run_weak_scaling(**self.FAST)
        g = [r.gpu_seconds for r in rows]
        assert g[-1] < 2.5 * g[0]  # nearly constant (Fig 7)
        s = [r.speedup for r in rows]
        assert all(v > 2.0 for v in s)  # the sustained ~4x advantage

    def test_foi_speedup_grows(self):
        rows = run_foi_scaling(**self.FAST)
        s = [r.speedup for r in rows]
        assert s[0] < s[-1]
        assert s[-1] > 1.8 * s[0]  # strong growth with FOI (Fig 8)
        cpu = [r.cpu_seconds for r in rows]
        gpu = [r.gpu_seconds for r in rows]
        # CPU grows much faster than GPU with FOI.
        assert cpu[-1] / cpu[0] > 2 * gpu[-1] / gpu[0]

    def test_format(self, strong):
        text = format_scaling(strong, "Strong")
        assert "{4,128}" in text and "Paper" in text


class TestValidateDirect:
    def test_projector_agrees_with_direct_execution(self):
        """Order-of-magnitude agreement between the trace-driven projector
        and costs priced from directly-executed simulations."""
        out = validate_direct(dim=(32, 32), num_infections=2, num_steps=60)
        assert 0.2 < out["cpu_ratio"] < 5.0
        assert 0.2 < out["gpu_ratio"] < 5.0
