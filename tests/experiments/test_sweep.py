"""Tests for the parameter-sweep/fitting utility."""

import pytest

from repro.core.params import SimCovParams
from repro.experiments.sweep import SweepResult, best_fit, run_sweep, summarize
from repro.simcov_gpu.simulation import SimCovGPU


@pytest.fixture(scope="module")
def results():
    base = SimCovParams.fast_test(dim=(24, 24), num_infections=2,
                                  num_steps=120)
    grid = {"infectivity": [0.02, 0.15], "num_infections": [1, 4]}
    return run_sweep(base, grid, trials=2, base_seed=5)


class TestRunSweep:
    def test_full_factorial_with_replicates(self, results):
        assert len(results) == 2 * 2 * 2
        configs = {tuple(sorted(r.config.items())) for r in results}
        assert len(configs) == 4

    def test_distinct_seeds(self, results):
        assert len({r.seed for r in results}) == len(results)

    def test_outcomes_responsive(self, results):
        """Higher infectivity must produce higher viral peaks."""
        lo = [r.peak_virions for r in results if r.config["infectivity"] == 0.02]
        hi = [r.peak_virions for r in results if r.config["infectivity"] == 0.15]
        assert max(lo) < min(hi) or sum(hi) / len(hi) > sum(lo) / len(lo)

    def test_custom_implementation(self):
        base = SimCovParams.fast_test(dim=(16, 16), num_infections=1,
                                      num_steps=40)
        out = run_sweep(
            base, {"num_infections": [1, 2]}, trials=1,
            make_sim=lambda p, s: SimCovGPU(p, num_devices=2, seed=s),
        )
        assert len(out) == 2


class TestSummarize:
    def test_groups_and_moments(self, results):
        summary = summarize(results)
        assert len(summary) == 4
        for stats in summary.values():
            assert stats["n"] == 2
            assert stats["mean"] >= 0
            assert stats["std"] >= 0

    def test_single_trial_zero_std(self):
        r = SweepResult({"a": 1}, 0, 0, 5.0, 3, 1.0, 0.0, 0)
        assert summarize([r])[(("a", 1),)]["std"] == 0.0


class TestBestFit:
    def test_selects_closest_config(self, results):
        # Target the largest observed mean: the high-infectivity,
        # many-FOI configuration should win.
        summary = summarize(results)
        biggest = max(v["mean"] for v in summary.values())
        config, mean = best_fit(results, target=biggest)
        assert mean == biggest
        assert config["infectivity"] == 0.15

    def test_target_zero_selects_mildest(self, results):
        config, _ = best_fit(results, target=0.0)
        assert config["infectivity"] == 0.02
