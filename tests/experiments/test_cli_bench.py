"""``simcov-repro bench`` CLI: report/diff wiring and exit codes (the
contract the CI gate scripts against)."""

import json

import pytest

from repro.experiments.cli import main

META = {"host": "vm", "cpu_count": 1}


def write_payload(path, steps_per_sec=100.0, meta=META):
    payload = {
        "configs": {
            "small_2d": {
                "gated": {"steps_per_sec": steps_per_sec,
                          "wall_seconds": 1.0},
                "speedup": 2.0,
            }
        },
    }
    if meta is not None:
        payload["meta"] = dict(meta)
    path.write_text(json.dumps(payload))
    return str(path)


@pytest.fixture
def current(tmp_path):
    return write_payload(tmp_path / "current.json")


@pytest.fixture
def previous(tmp_path):
    return write_payload(tmp_path / "previous.json")


class TestBenchReport:
    def test_report_prints_metrics(self, capsys, current):
        assert main(["bench", "report", current]) == 0
        out = capsys.readouterr().out
        assert "configs.small_2d.gated.steps_per_sec" in out
        assert "host=vm" in out

    def test_missing_file_is_usage_error(self, capsys, tmp_path):
        assert main(["bench", "report", str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err


class TestBenchDiff:
    def test_clean_diff_exits_zero(self, capsys, current, previous):
        assert main(["bench", "diff", current, previous, "--check"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_with_check_exits_one(self, capsys, tmp_path,
                                             previous):
        slowed = write_payload(tmp_path / "slow.json", steps_per_sec=50.0)
        assert main(["bench", "diff", slowed, previous, "--check"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_regression_without_check_exits_zero(self, tmp_path, previous):
        slowed = write_payload(tmp_path / "slow.json", steps_per_sec=50.0)
        assert main(["bench", "diff", slowed, previous]) == 0

    def test_threshold_flag_loosens_gate(self, tmp_path, previous):
        slowed = write_payload(tmp_path / "slow.json", steps_per_sec=60.0)
        assert main(["bench", "diff", slowed, previous, "--check"]) == 1
        assert main(["bench", "diff", slowed, previous, "--check",
                     "--threshold", "0.5"]) == 0

    def test_cross_host_exits_two(self, capsys, tmp_path, previous):
        other = write_payload(
            tmp_path / "other.json",
            meta={"host": "laptop", "cpu_count": 8},
        )
        assert main(["bench", "diff", other, previous, "--check"]) == 2
        assert "--allow-cross-host" in capsys.readouterr().err

    def test_allow_cross_host_overrides(self, capsys, tmp_path, previous):
        other = write_payload(
            tmp_path / "other.json",
            meta={"host": "laptop", "cpu_count": 8},
        )
        assert main(["bench", "diff", other, previous, "--check",
                     "--allow-cross-host"]) == 0
        assert "cross-host comparison forced" in capsys.readouterr().out

    def test_bad_subcommand_is_usage_error(self, capsys):
        assert main(["bench", "frobnicate"]) == 2
        assert "usage" in capsys.readouterr().err
        assert main(["bench"]) == 2
