"""Tests for world-state rendering."""

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.core.state import EpiState, VoxelBlock
from repro.experiments.viz import LEGEND, render_activity, render_world
from repro.grid.spec import GridSpec


class TestRenderWorld:
    def test_fresh_tissue_all_healthy(self):
        spec = GridSpec((8, 8))
        blk = VoxelBlock(spec, spec.domain)
        art = render_world(blk)
        rows = art.splitlines()[:-1]
        assert rows == ["........"] * 8

    def test_states_rendered(self):
        spec = GridSpec((4, 4))
        blk = VoxelBlock(spec, spec.domain)
        blk.epi_state[1, 1] = EpiState.EXPRESSING
        blk.epi_state[2, 2] = EpiState.DEAD
        blk.tcell[3, 3] = 1
        art = render_world(blk)
        assert "E" in art and "x" in art and "T" in art

    def test_tcell_drawn_over_epithelium(self):
        spec = GridSpec((2, 2))
        blk = VoxelBlock(spec, spec.domain)
        blk.epi_state[1, 1] = EpiState.APOPTOTIC
        blk.tcell[1, 1] = 1
        art = render_world(blk).splitlines()[0]
        assert art[0] == "T"

    def test_downsampling_keeps_features(self):
        spec = GridSpec((200, 200))
        blk = VoxelBlock(spec, spec.domain)
        blk.epi_state[100, 100] = EpiState.EXPRESSING
        art = render_world(blk, max_width=50)
        rows = art.splitlines()[:-1]
        assert len(rows) <= 50
        assert any("E" in r for r in rows)

    def test_legend_present(self):
        spec = GridSpec((4, 4))
        blk = VoxelBlock(spec, spec.domain)
        assert LEGEND in render_world(blk)

    def test_rejects_3d(self):
        spec = GridSpec((4, 4, 4))
        blk = VoxelBlock(spec, spec.domain)
        with pytest.raises(ValueError):
            render_world(blk)

    def test_real_simulation_snapshot(self):
        p = SimCovParams.fast_test(dim=(32, 32), num_infections=2,
                                   num_steps=60)
        sim = SequentialSimCov(p, seed=3)
        sim.run()
        art = render_world(sim.block)
        # A mid-infection world shows infected states.
        assert any(g in art for g in ("i", "E", "x"))


class TestRenderActivity:
    def test_active_and_buffer(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[2, 2] = True
        tiles = np.zeros((8, 8), dtype=bool)
        tiles[:4, :4] = True
        art = render_activity(mask, tiles)
        assert "#" in art and "+" in art and "." in art

    def test_no_tiles(self):
        mask = np.ones((4, 4), dtype=bool)
        art = render_activity(mask)
        assert art.splitlines()[0] == "####"
