"""Tests for the CLI entry point and the ASCII/CSV output helpers."""

import csv
import os

import numpy as np
import pytest

from repro.experiments.cli import COMMANDS, main
from repro.experiments.plotting import (
    ascii_series,
    hbar_chart,
    speedup_annotation,
    write_csv,
)


class TestPlotting:
    def test_ascii_series_renders_all_points(self):
        x = np.array([1.0, 10.0, 100.0])
        chart = ascii_series(
            {"a": (x, x * 2), "b": (x, x * 3)}, logx=True, logy=True,
            title="t",
        )
        assert "t" in chart
        assert "o=a" in chart and "x=b" in chart
        assert chart.count("o") >= 3

    def test_ascii_series_constant_data(self):
        x = np.array([1.0, 2.0])
        chart = ascii_series({"flat": (x, np.array([5.0, 5.0]))})
        assert "flat" in chart  # no div-by-zero on zero span

    def test_hbar_chart_stacks(self):
        rows = [
            ("A", {"u": 10.0, "r": 30.0}),
            ("B", {"u": 10.0, "r": 5.0}),
        ]
        chart = hbar_chart(rows, width=40, title="bars")
        assert "bars" in chart
        assert "40.0s" in chart and "15.0s" in chart
        # A's bar is longer than B's.
        a_len = chart.splitlines()[1].count("#") + chart.splitlines()[1].count("=")
        b_len = chart.splitlines()[2].count("#") + chart.splitlines()[2].count("=")
        assert a_len > b_len

    def test_speedup_annotation(self):
        assert speedup_annotation(100.0, 20.0) == "5.00x"
        assert speedup_annotation(1.0, 0.0) == "inf"

    def test_write_csv_roundtrip(self, tmp_path):
        path = str(tmp_path / "sub" / "rows.csv")
        write_csv(path, [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}])
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert rows[1]["b"] == "4.5"

    def test_write_csv_empty_noop(self, tmp_path):
        path = str(tmp_path / "none.csv")
        write_csv(path, [])
        assert not os.path.exists(path)


class TestCli:
    def test_all_paper_items_have_commands(self):
        assert set(COMMANDS) == {
            "table1", "fig4", "fig5", "table2", "fig6", "fig7", "fig8",
            "report",
        }

    def test_table1_runs(self, capsys, tmp_path):
        assert main(["table1", "--outdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Strong Scaling" in out

    def test_fig6_writes_csv(self, capsys, tmp_path, monkeypatch):
        # Shrink the workload for test speed.
        import repro.experiments.cli as cli
        import repro.experiments.scaling as scaling

        original = scaling.run_strong_scaling
        fast = lambda **kw: original(samples=8)
        monkeypatch.setattr(cli, "run_strong_scaling", fast)
        assert main(["fig6", "--outdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Speedup" in out and "{64,2048}" in out
        with open(tmp_path / "fig6_scaling.csv") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 5
        assert float(rows[0]["speedup"]) > 1.0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
