"""Tests for SIMCoV-GPU specifics: variants, tiling, ledger accounting."""

import numpy as np
import pytest

from repro.core.params import SimCovParams
from repro.simcov_gpu.simulation import SimCovGPU
from repro.simcov_gpu.variants import GpuVariant


@pytest.fixture
def params():
    return SimCovParams.fast_test(dim=(32, 32), num_infections=4, num_steps=30)


class TestVariants:
    def test_flags(self):
        assert not GpuVariant.UNOPTIMIZED.use_tiling
        assert not GpuVariant.UNOPTIMIZED.use_tree_reduction
        assert GpuVariant.FAST_REDUCTION.use_tree_reduction
        assert not GpuVariant.FAST_REDUCTION.use_tiling
        assert GpuVariant.MEMORY_TILING.use_tiling
        assert GpuVariant.COMBINED.use_tiling
        assert GpuVariant.COMBINED.use_tree_reduction

    def test_labels(self):
        assert GpuVariant.COMBINED.label == "Combined"


class TestTiling:
    def test_unoptimized_processes_everything(self, params):
        gpu = SimCovGPU(params, num_devices=4, seed=0,
                        variant=GpuVariant.UNOPTIMIZED)
        gpu.step()
        assert gpu.active_fraction() == 1.0

    def test_tiling_skips_inactive(self, params):
        gpu = SimCovGPU(params, num_devices=4, seed=0,
                        variant=GpuVariant.COMBINED, tile_shape=(4, 4))
        # After the first sweep the active set collapses to the FOI tiles
        # (+ buffers + pinned boundary tiles).
        for _ in range(gpu.sweep_period + 1):
            gpu.step()
        assert gpu.active_fraction() < 1.0

    def test_active_set_grows_with_infection(self, params):
        gpu = SimCovGPU(params, num_devices=4, seed=0, tile_shape=(4, 4))
        gpu.run(8)
        early = gpu.active_fraction()
        gpu.run(22)
        late = gpu.active_fraction()
        assert late >= early

    def test_sweep_period_default_is_tile_side(self, params):
        gpu = SimCovGPU(params, num_devices=4, seed=0, tile_shape=(4, 8))
        assert gpu.sweep_period == 4

    def test_sweep_launches_counted(self, params):
        gpu = SimCovGPU(params, num_devices=4, seed=0, tile_shape=(4, 4))
        gpu.run(gpu.sweep_period)
        ledger = gpu.cluster.ledger
        assert ledger.launches.get("tile_sweep", 0) == 4  # one per device
        assert ledger.voxels["tile_sweep"] == 32 * 32  # full owned scan


class TestReductionStrategies:
    def test_unoptimized_uses_many_atomics(self, params):
        gpu = SimCovGPU(params, num_devices=2, seed=0,
                        variant=GpuVariant.UNOPTIMIZED)
        gpu.step()
        work = gpu.step_work[0]["ledger"]
        # Atomic reduce: one op per voxel per stat field (8 fields).
        assert work.atomic_ops >= 8 * 32 * 32

    def test_tree_reduction_uses_few_atomics(self, params):
        atom = SimCovGPU(params, num_devices=2, seed=0,
                         variant=GpuVariant.UNOPTIMIZED)
        tree = SimCovGPU(params, num_devices=2, seed=0,
                         variant=GpuVariant.FAST_REDUCTION)
        atom.step()
        tree.step()
        assert (
            tree.step_work[0]["ledger"].atomic_ops
            < atom.step_work[0]["ledger"].atomic_ops / 50
        )
        assert tree.step_work[0]["ledger"].reduce_tree_elems > 0

    def test_stats_identical_across_strategies(self, params):
        a = SimCovGPU(params, num_devices=2, seed=3,
                      variant=GpuVariant.UNOPTIMIZED)
        b = SimCovGPU(params, num_devices=2, seed=3,
                      variant=GpuVariant.FAST_REDUCTION)
        for _ in range(10):
            sa, sb = a.step(), b.step()
            assert sa.healthy == sb.healthy
            assert sa.tcells_tissue == sb.tcells_tissue
            assert np.isclose(sa.virions_total, sb.virions_total, rtol=1e-12)


class TestLedger:
    def test_halo_copies_counted(self, params):
        gpu = SimCovGPU(params, num_devices=4, seed=0, gpus_per_node=2)
        gpu.step()
        work = gpu.step_work[0]["ledger"]
        assert work.copies_intra > 0
        assert work.copies_inter > 0

    def test_single_node_no_internode(self, params):
        gpu = SimCovGPU(params, num_devices=4, seed=0, gpus_per_node=4)
        gpu.step()
        assert gpu.step_work[0]["ledger"].copies_inter == 0

    def test_launch_counts_stable_without_tiling(self, params):
        gpu = SimCovGPU(params, num_devices=2, seed=0,
                        variant=GpuVariant.UNOPTIMIZED)
        gpu.run(3)
        launches = [
            w["ledger"].total_launches() for w in gpu.step_work
        ]
        assert launches[0] == launches[1] == launches[2]

    def test_tiling_reduces_update_voxels(self, params):
        full = SimCovGPU(params, num_devices=2, seed=0,
                         variant=GpuVariant.UNOPTIMIZED)
        tiled = SimCovGPU(params, num_devices=2, seed=0,
                          variant=GpuVariant.COMBINED, tile_shape=(4, 4))
        n = tiled.sweep_period + 2
        full.run(n)
        tiled.run(n)
        fv = full.step_work[-1]["ledger"].voxels["update_agents"]
        tv = tiled.step_work[-1]["ledger"].voxels["update_agents"]
        assert tv < fv

    def test_device_reductions_counted(self, params):
        gpu = SimCovGPU(params, num_devices=2, seed=0)
        gpu.step()
        # One cross-device reduce per reduced stat + extr/binds/moves.
        assert gpu.step_work[0]["ledger"].device_reductions == 8 + 3


class TestDeviceMemory:
    def test_buffers_registered(self, params):
        gpu = SimCovGPU(params, num_devices=4, seed=0)
        dev = gpu.cluster.devices[0]
        assert dev.allocated_bytes > 0
        assert "epi_state" in dev.arrays
        assert "intent_move_bid" in dev.arrays

    def test_bytes_per_voxel_matches_machine_model(self, params):
        """The perf model's gpu_bytes_per_voxel estimate is grounded in the
        actual per-voxel footprint of the implementation."""
        from repro.perf.machine import PERLMUTTER

        gpu = SimCovGPU(params, num_devices=4, seed=0)
        dev = gpu.cluster.devices[0]
        owned = gpu.decomp.boxes[0].size
        measured = dev.allocated_bytes / owned
        assert 0.5 < measured / PERLMUTTER.gpu_bytes_per_voxel < 2.0

    def test_capacity_exceeded_raises(self, params):
        with pytest.raises(MemoryError):
            SimCovGPU(params, num_devices=2, seed=0, capacity_bytes=10_000)
