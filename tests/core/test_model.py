"""Behavioral tests for the sequential reference simulation."""

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.core.state import EpiState


@pytest.fixture(scope="module")
def long_run():
    """One shared 350-step run on a small grid (module-scoped for speed)."""
    p = SimCovParams.fast_test(dim=(32, 32), num_infections=2, num_steps=350)
    sim = SequentialSimCov(p, seed=11)
    sim.run()
    return sim


class TestConstruction:
    def test_seeds_applied(self):
        p = SimCovParams.fast_test(dim=(16, 16), num_infections=3)
        sim = SequentialSimCov(p, seed=0)
        assert (sim.block.virions == 1.0).sum() == 3

    def test_explicit_seed_gids(self):
        p = SimCovParams.fast_test(dim=(16, 16))
        sim = SequentialSimCov(p, seed=0, seed_gids=np.array([0, 5, 17]))
        assert (sim.block.virions == 1.0).sum() == 3

    def test_reproducible(self):
        p = SimCovParams.fast_test(dim=(16, 16), num_infections=2)
        a = SequentialSimCov(p, seed=5)
        b = SequentialSimCov(p, seed=5)
        for _ in range(40):
            sa, sb = a.step(), b.step()
            assert sa == sb
        np.testing.assert_array_equal(a.block.epi_state, b.block.epi_state)
        np.testing.assert_array_equal(a.block.virions, b.block.virions)
        np.testing.assert_array_equal(a.block.tcell, b.block.tcell)

    def test_different_seeds_diverge(self):
        p = SimCovParams.fast_test(dim=(16, 16), num_infections=2)
        a = SequentialSimCov(p, seed=5)
        b = SequentialSimCov(p, seed=6)
        for _ in range(60):
            a.step()
            b.step()
        assert not np.array_equal(a.block.epi_state, b.block.epi_state)


class TestInvariants:
    def test_total_cells_conserved(self, long_run):
        """Epithelial cells change state but never (dis)appear."""
        n = long_run.params.num_voxels
        for i in range(0, len(long_run.series), 25):
            s = long_run.series[i]
            total = s.healthy + s.incubating + s.expressing + s.apoptotic + s.dead
            assert total == n

    def test_concentrations_bounded(self, long_run):
        blk = long_run.block
        assert blk.virions.min() >= 0.0
        assert blk.virions.max() <= 1.0
        assert blk.chemokine.min() >= 0.0
        assert blk.chemokine.max() <= 1.0

    def test_occupancy_invariant(self, long_run):
        assert long_run.block.tcell.max() <= 1

    def test_tcell_lifetimes_positive(self, long_run):
        blk = long_run.block
        assert (blk.tcell_tissue_time[blk.tcell == 1] >= 1).all()

    def test_stats_nonnegative(self, long_run):
        for name in ("virions_total", "chemokine_total", "tcells_tissue",
                     "tcells_vasculature"):
            assert (long_run.series.field(name) >= 0).all()


class TestDynamics:
    """The Fig 5 curve shape: growth, immune response, decline."""

    def test_infection_grows_then_declines(self, long_run):
        v = long_run.series.field("virions_total")
        peak_step, peak = long_run.series.peak("virions_total")
        assert peak > 50 * v[0]  # substantial growth
        assert 50 < peak_step < 330  # interior peak
        assert v[-1] < 0.8 * peak  # declining after the peak

    def test_tcells_respond_after_delay(self, long_run):
        tc = long_run.series.field("tcells_tissue")
        delay = long_run.params.tcell_initial_delay
        assert tc[:delay].max() == 0
        assert tc[-1] > 0 or tc.max() > 10

    def test_apoptosis_follows_tcells(self, long_run):
        apop = long_run.series.field("apoptotic")
        assert apop.max() > 0
        first_apop = int(np.argmax(apop > 0))
        assert first_apop >= long_run.params.tcell_initial_delay

    def test_dead_monotone(self, long_run):
        dead = long_run.series.field("dead")
        assert (np.diff(dead) >= 0).all()

    def test_no_infection_without_foi(self):
        p = SimCovParams.fast_test(dim=(16, 16), num_infections=0, num_steps=60)
        sim = SequentialSimCov(p, seed=1)
        sim.run()
        s = sim.series[-1]
        assert s.healthy == p.num_voxels
        assert s.virions_total == 0.0
        assert s.tcells_tissue == 0

    def test_more_foi_faster_spread(self):
        base = SimCovParams.fast_test(dim=(48, 48), num_steps=120)
        lo = SequentialSimCov(base.with_(num_infections=1), seed=3)
        hi = SequentialSimCov(base.with_(num_infections=16), seed=3)
        lo.run()
        hi.run()
        assert (
            hi.series.field("virions_total")[-1]
            > 3 * lo.series.field("virions_total")[-1]
        )

    def test_activity_fraction_grows(self):
        p = SimCovParams.fast_test(dim=(48, 48), num_infections=4, num_steps=80)
        sim = SequentialSimCov(p, seed=2)
        f0 = sim.activity_fraction()
        sim.run()
        assert sim.activity_fraction() > f0


class TestRunHelper:
    def test_run_default_steps(self):
        p = SimCovParams.fast_test(dim=(8, 8), num_steps=17)
        sim = SequentialSimCov(p, seed=0)
        series = sim.run()
        assert len(series) == 17
        assert sim.step_num == 17

    def test_run_resumable(self):
        p = SimCovParams.fast_test(dim=(8, 8))
        sim = SequentialSimCov(p, seed=0)
        sim.run(5)
        sim.run(5)
        assert sim.step_num == 10
        assert [s.step for s in sim.series._stats] == list(range(10))
