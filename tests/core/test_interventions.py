"""Tests for the antiviral/antibody intervention options ([25])."""

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.simcov_gpu.simulation import SimCovGPU


class TestParamHelpers:
    def test_no_intervention_by_default(self):
        p = SimCovParams.fast_test()
        assert p.virion_production_at(0) == p.virion_production
        assert p.virion_production_at(10**6) == p.virion_production
        assert p.virion_clearance_at(10**6) == p.virion_clearance

    def test_antiviral_kicks_in_at_start(self):
        p = SimCovParams.fast_test().with_(
            antiviral_start=100, antiviral_factor=0.25
        )
        assert p.virion_production_at(99) == p.virion_production
        assert p.virion_production_at(100) == pytest.approx(
            0.25 * p.virion_production
        )

    def test_antibody_clearance_clamped(self):
        p = SimCovParams.fast_test().with_(
            virion_clearance=0.5, antibody_start=0, antibody_factor=10.0
        )
        assert p.virion_clearance_at(0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimCovParams.fast_test().with_(antiviral_factor=-1.0)
        with pytest.raises(ValueError):
            SimCovParams.fast_test().with_(antibody_factor=-0.5)


class TestInterventionDynamics:
    @pytest.fixture(scope="class")
    def baseline(self):
        p = SimCovParams.fast_test(dim=(48, 48), num_infections=3,
                                   num_steps=260)
        sim = SequentialSimCov(p, seed=6)
        sim.run()
        return p, sim

    def test_early_antiviral_blunts_peak(self, baseline):
        p, base = baseline
        treated = SequentialSimCov(
            p.with_(antiviral_start=40, antiviral_factor=0.05), seed=6
        )
        treated.run()
        assert (
            treated.series.peak("virions_total")[1]
            < 0.7 * base.series.peak("virions_total")[1]
        )
        assert treated.series[-1].dead < base.series[-1].dead

    def test_antibodies_accelerate_clearance(self, baseline):
        p, base = baseline
        treated = SequentialSimCov(
            p.with_(antibody_start=40, antibody_factor=20.0), seed=6
        )
        treated.run()
        assert (
            treated.series.field("virions_total")[-1]
            < base.series.field("virions_total")[-1]
        )

    def test_late_intervention_changes_nothing_before_start(self, baseline):
        p, base = baseline
        treated = SequentialSimCov(
            p.with_(antiviral_start=150, antiviral_factor=0.0), seed=6
        )
        for i in range(150):
            s = treated.step()
            assert s == base.series[i]
        # After onset, trajectories diverge.
        treated.run(60)
        assert (
            treated.series.field("virions_total")[-1]
            != base.series.field("virions_total")[209]
        )

    def test_parallel_impl_agrees_under_intervention(self, baseline):
        p, _ = baseline
        treated_p = p.with_(num_steps=80, antiviral_start=30,
                            antiviral_factor=0.1, antibody_start=50,
                            antibody_factor=5.0)
        seq = SequentialSimCov(treated_p, seed=6)
        gpu = SimCovGPU(treated_p, num_devices=4, seed=6)
        seq.run()
        gpu.run()
        np.testing.assert_array_equal(
            seq.block.virions[seq.block.interior], gpu.gather_field("virions")
        )
        np.testing.assert_array_equal(
            seq.block.epi_state[seq.block.interior],
            gpu.gather_field("epi_state"),
        )
