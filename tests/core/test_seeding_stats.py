"""Tests for FOI seeding, patchy lesions, and statistics plumbing."""

import numpy as np
import pytest

from repro.core.params import SimCovParams
from repro.core.seeding import apply_seeds, patchy_lesions, seed_infections
from repro.core.state import EpiState, VoxelBlock
from repro.core.stats import REDUCED_FIELDS, StepStats, TimeSeries, stats_vector
from repro.grid.box import Box
from repro.grid.spec import GridSpec
from repro.rng.streams import VoxelRNG


class TestSeeding:
    def test_count_and_distinct(self):
        p = SimCovParams(dim=(50, 50), num_infections=40)
        gids = seed_infections(p, VoxelRNG(1))
        assert len(gids) == 40
        assert len(np.unique(gids)) == 40
        assert gids.min() >= 0 and gids.max() < 2500

    def test_deterministic(self):
        p = SimCovParams(dim=(50, 50), num_infections=10)
        a = seed_infections(p, VoxelRNG(3))
        b = seed_infections(p, VoxelRNG(3))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        p = SimCovParams(dim=(50, 50), num_infections=10)
        a = seed_infections(p, VoxelRNG(3))
        b = seed_infections(p, VoxelRNG(4))
        assert not np.array_equal(a, b)

    def test_saturated_grid(self):
        """FOI count equal to the voxel count still terminates."""
        p = SimCovParams(dim=(4, 4), num_infections=16)
        gids = seed_infections(p, VoxelRNG(0))
        assert sorted(gids.tolist()) == list(range(16))

    def test_zero_foi(self):
        p = SimCovParams(dim=(8, 8), num_infections=0)
        assert seed_infections(p, VoxelRNG(0)).size == 0


class TestApplySeeds:
    def test_whole_domain(self):
        p = SimCovParams(dim=(10, 10), num_infections=5)
        spec = GridSpec(p.dim)
        blk = VoxelBlock(spec, spec.domain)
        gids = seed_infections(p, VoxelRNG(2))
        n = apply_seeds(blk, gids)
        assert n == 5
        assert (blk.virions == 1.0).sum() == 5

    def test_subdomain_applies_only_owned(self):
        p = SimCovParams(dim=(10, 10), num_infections=20)
        spec = GridSpec(p.dim)
        gids = seed_infections(p, VoxelRNG(2))
        halves = [
            VoxelBlock(spec, Box((0, 0), (5, 10))),
            VoxelBlock(spec, Box((5, 0), (10, 10))),
        ]
        total = sum(apply_seeds(b, gids) for b in halves)
        assert total == 20

    def test_empty_gids(self):
        spec = GridSpec((4, 4))
        blk = VoxelBlock(spec, spec.domain)
        assert apply_seeds(blk, np.array([], dtype=np.int64)) == 0


class TestPatchyLesions:
    def test_lesions_are_disks(self):
        p = SimCovParams(dim=(60, 60))
        gids = patchy_lesions(p, VoxelRNG(5), num_lesions=3, mean_radius=4.0)
        assert gids.size >= 3  # at least the centers
        assert len(np.unique(gids)) == gids.size

    def test_radius_scales_footprint(self):
        p = SimCovParams(dim=(100, 100))
        small = patchy_lesions(p, VoxelRNG(5), num_lesions=5, mean_radius=2.0)
        large = patchy_lesions(p, VoxelRNG(5), num_lesions=5, mean_radius=8.0)
        assert large.size > small.size

    def test_within_domain(self):
        p = SimCovParams(dim=(30, 30))
        gids = patchy_lesions(p, VoxelRNG(9), num_lesions=10, mean_radius=6.0)
        assert gids.min() >= 0 and gids.max() < 900


class TestStats:
    def test_vector_layout(self):
        spec = GridSpec((6, 6))
        blk = VoxelBlock(spec, spec.domain)
        vec = stats_vector(blk)
        assert vec.shape == (len(REDUCED_FIELDS),)
        assert vec[0] == 36  # all healthy

    def test_vector_counts(self):
        spec = GridSpec((6, 6))
        blk = VoxelBlock(spec, spec.domain)
        blk.epi_state[1, 1] = EpiState.DEAD
        blk.epi_state[2, 2] = EpiState.EXPRESSING
        blk.tcell[3, 3] = 1
        blk.virions[4, 4] = 0.25
        vec = stats_vector(blk)
        stats = StepStats.from_vector(0, vec)
        assert stats.healthy == 34
        assert stats.expressing == 1
        assert stats.dead == 1
        assert stats.tcells_tissue == 1
        assert stats.virions_total == 0.25
        assert stats.infected == 1

    def test_ghosts_not_counted(self):
        spec = GridSpec((8, 8))
        blk = VoxelBlock(spec, Box((0, 0), (4, 4)))
        blk.virions[...] = 1.0  # including ghosts
        vec = stats_vector(blk)
        assert vec[6] == 16  # only owned voxels

    def test_from_vector_validates(self):
        with pytest.raises(ValueError):
            StepStats.from_vector(0, np.zeros(3))


class TestTimeSeries:
    def _mk(self, step, virions):
        return StepStats(step, 10, 0, 0, 0, 0, 0, virions, 0.0)

    def test_append_and_field(self):
        ts = TimeSeries()
        for i, v in enumerate([1.0, 5.0, 3.0]):
            ts.append(self._mk(i, v))
        np.testing.assert_array_equal(ts.field("virions_total"), [1, 5, 3])
        np.testing.assert_array_equal(ts.steps(), [0, 1, 2])
        assert len(ts) == 3
        assert ts[1].virions_total == 5.0

    def test_peak(self):
        ts = TimeSeries()
        for i, v in enumerate([1.0, 5.0, 3.0]):
            ts.append(self._mk(i, v))
        assert ts.peak("virions_total") == (1, 5.0)

    def test_peak_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().peak("virions_total")

    def test_to_rows(self):
        ts = TimeSeries()
        ts.append(self._mk(0, 2.0))
        rows = ts.to_rows()
        assert rows[0]["virions_total"] == 2.0
        assert "healthy" in rows[0]
