"""Unit tests for the shared update kernels."""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.params import SimCovParams
from repro.core.state import EpiState, VoxelBlock
from repro.grid.spec import GridSpec
from repro.rng.streams import VoxelRNG


@pytest.fixture
def params():
    return SimCovParams.fast_test(dim=(12, 12), num_infections=1)


@pytest.fixture
def block(params):
    spec = GridSpec(params.dim)
    return VoxelBlock(spec, spec.domain)


@pytest.fixture
def rng():
    return VoxelRNG(7)


def put_tcell(block, x, y, life=50, bound=0):
    """Place a T cell at *global* (x, y)."""
    g = block.ghost
    block.tcell[x + g, y + g] = 1
    block.tcell_tissue_time[x + g, y + g] = life
    block.tcell_bound_time[x + g, y + g] = bound


class TestTcellAge:
    def test_decrement_and_death(self, block):
        put_tcell(block, 3, 3, life=1)
        put_tcell(block, 5, 5, life=10)
        kernels.tcell_age(block, block.interior)
        assert block.tcell[4, 4] == 0  # died
        assert block.tcell[6, 6] == 1
        assert block.tcell_tissue_time[6, 6] == 9

    def test_bound_countdown(self, block):
        put_tcell(block, 2, 2, life=50, bound=3)
        kernels.tcell_age(block, block.interior)
        assert block.tcell_bound_time[3, 3] == 2

    def test_unbound_stays_zero(self, block):
        put_tcell(block, 2, 2, life=50, bound=0)
        kernels.tcell_age(block, block.interior)
        assert block.tcell_bound_time[3, 3] == 0


class TestIntents:
    def test_lone_tcell_moves(self, params, block, rng):
        put_tcell(block, 6, 6)
        intents = kernels.IntentArrays(block.shape)
        kernels.tcell_intents(params, rng, 0, block, intents, block.interior)
        assert intents.move_dir[7, 7] >= 0
        assert intents.bid_self[7, 7] > 0
        assert intents.bind_dir[7, 7] == -1
        # Exactly one target voxel has a move bid.
        assert (intents.move_bid > 0).sum() == 1

    def test_bound_tcell_no_intent(self, params, block, rng):
        put_tcell(block, 6, 6, bound=2)
        intents = kernels.IntentArrays(block.shape)
        kernels.tcell_intents(params, rng, 0, block, intents, block.interior)
        assert intents.move_dir[7, 7] == -1
        assert intents.bind_dir[7, 7] == -1

    def test_binder_prefers_bind_over_move(self, params, block, rng):
        put_tcell(block, 6, 6)
        block.epi_state[7, 8] = EpiState.EXPRESSING  # neighbor of (6,6)
        intents = kernels.IntentArrays(block.shape)
        kernels.tcell_intents(params, rng, 0, block, intents, block.interior)
        assert intents.bind_dir[7, 7] >= 0
        assert intents.move_dir[7, 7] == -1
        assert intents.bind_bid[7, 8] > 0

    def test_incubating_not_bindable(self, params, block, rng):
        put_tcell(block, 6, 6)
        block.epi_state[7, 8] = EpiState.INCUBATING
        intents = kernels.IntentArrays(block.shape)
        kernels.tcell_intents(params, rng, 0, block, intents, block.interior)
        assert intents.bind_dir[7, 7] == -1
        assert intents.move_dir[7, 7] >= 0

    def test_surrounded_tcell_blocked(self, params, block, rng):
        put_tcell(block, 6, 6)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                if dx or dy:
                    put_tcell(block, 6 + dx, 6 + dy)
        intents = kernels.IntentArrays(block.shape)
        kernels.tcell_intents(params, rng, 0, block, intents, block.interior)
        assert intents.move_dir[7, 7] == -1  # all neighbors occupied

    def test_corner_tcell_never_targets_outside(self, params, block, rng):
        """A T cell at the domain corner must not move out of the domain.
        Run many steps so every direction is eventually drawn."""
        put_tcell(block, 0, 0, life=10**6)
        intents = kernels.IntentArrays(block.shape)
        for step in range(50):
            intents.clear()
            kernels.tcell_intents(params, rng, step, block, intents, block.interior)
            d = intents.move_dir[1, 1]
            if d >= 0:
                from repro.grid.spec import moore_offsets

                off = moore_offsets(2)[d]
                target = np.array([0, 0]) + off
                assert (target >= 0).all(), f"step {step} moved out {target}"

    def test_clear_resets(self, params, block, rng):
        put_tcell(block, 6, 6)
        intents = kernels.IntentArrays(block.shape)
        kernels.tcell_intents(params, rng, 0, block, intents, block.interior)
        intents.clear()
        assert (intents.move_dir == -1).all()
        assert (intents.bid_self == 0).all()


class TestResolveMoves:
    def test_single_mover_moves(self, params, block, rng):
        put_tcell(block, 6, 6, life=42)
        intents = kernels.IntentArrays(block.shape)
        kernels.tcell_intents(params, rng, 0, block, intents, block.interior)
        moved = kernels.resolve_moves(block, intents, block.interior)
        assert moved == 1
        assert block.tcell.sum() == 1
        assert block.tcell[7, 7] == 0  # vacated
        assert block.tcell_tissue_time.sum() == 42  # payload moved intact

    def test_conflict_one_winner(self, params, block, rng):
        """Two T cells bidding on the same voxel: exactly one moves."""
        # Place cells around (6,6) and force their choices by scanning steps
        # until both target the same voxel.
        put_tcell(block, 5, 5, life=10**6)
        put_tcell(block, 7, 7, life=10**6)
        from repro.grid.spec import moore_offsets

        offs = moore_offsets(2)
        found = False
        for step in range(500):
            intents = kernels.IntentArrays(block.shape)
            kernels.tcell_intents(params, rng, step, block, intents, block.interior)
            d1, d2 = intents.move_dir[6, 6], intents.move_dir[8, 8]
            if d1 < 0 or d2 < 0:
                continue
            t1 = np.array([5, 5]) + offs[d1]
            t2 = np.array([7, 7]) + offs[d2]
            if (t1 == t2).all():
                found = True
                before = int(block.tcell.sum())
                kernels.resolve_moves(block, intents, block.interior)
                after = int(block.tcell.sum())
                assert after == before == 2  # conservation
                # Exactly one landed on the contested voxel.
                assert block.tcell[t1[0] + 1, t1[1] + 1] == 1
                break
        assert found, "no conflicting step found in 500 tries"

    def test_conservation_over_many_steps(self, params, block, rng):
        rs = np.random.default_rng(0)
        for _ in range(12):
            x, y = rs.integers(0, 12, size=2)
            put_tcell(block, int(x), int(y), life=10**6)
        n0 = int(block.tcell.sum())
        for step in range(30):
            intents = kernels.IntentArrays(block.shape)
            kernels.tcell_intents(params, rng, step, block, intents, block.interior)
            kernels.resolve_moves(block, intents, block.interior)
            assert int(block.tcell.sum()) == n0
            # Occupancy is 0/1 everywhere.
            assert block.tcell.max() <= 1


class TestResolveBinds:
    def test_bind_triggers_apoptosis(self, params, block, rng):
        put_tcell(block, 6, 6)
        block.epi_state[7, 8] = EpiState.EXPRESSING
        intents = kernels.IntentArrays(block.shape)
        kernels.tcell_intents(params, rng, 0, block, intents, block.interior)
        binds = kernels.resolve_binds(params, rng, 0, block, intents, block.interior)
        assert binds == 1
        assert block.epi_state[7, 8] == EpiState.APOPTOTIC
        assert block.epi_timer[7, 8] >= 1
        assert block.tcell_bound_time[7, 7] == params.tcell_binding_period

    def test_two_binders_one_wins(self, params, block, rng):
        block.epi_state[7, 7] = EpiState.EXPRESSING
        put_tcell(block, 6, 6)
        put_tcell(block, 6, 7)
        intents = kernels.IntentArrays(block.shape)
        kernels.tcell_intents(params, rng, 0, block, intents, block.interior)
        kernels.resolve_binds(params, rng, 0, block, intents, block.interior)
        bound = (block.tcell_bound_time > 0).sum()
        assert bound == 1  # exactly one binder won


class TestEpithelialUpdate:
    def test_infection_requires_virions(self, params, block, rng):
        kernels.epithelial_update(params, rng, 0, block, block.interior)
        assert (block.epi_state[block.interior] == EpiState.HEALTHY).all()

    def test_infection_with_certainty(self, block, rng):
        p = SimCovParams.fast_test(dim=(12, 12)).with_(infectivity=1.0)
        block.virions[block.interior] = 1.0
        kernels.epithelial_update(p, rng, 0, block, block.interior)
        assert (block.epi_state[block.interior] == EpiState.INCUBATING).all()
        assert (block.epi_timer[block.interior] >= 1).all()

    def test_single_transition_per_step(self, params, block, rng):
        """A cell that becomes expressing must not also die this step."""
        block.epi_state[3, 3] = EpiState.INCUBATING
        block.epi_timer[3, 3] = 1
        kernels.epithelial_update(params, rng, 0, block, block.interior)
        assert block.epi_state[3, 3] == EpiState.EXPRESSING
        assert block.epi_timer[3, 3] >= 1

    def test_expressing_dies_at_timeout(self, params, block, rng):
        block.epi_state[3, 3] = EpiState.EXPRESSING
        block.epi_timer[3, 3] = 1
        kernels.epithelial_update(params, rng, 0, block, block.interior)
        assert block.epi_state[3, 3] == EpiState.DEAD

    def test_apoptotic_dies_at_timeout(self, params, block, rng):
        block.epi_state[3, 3] = EpiState.APOPTOTIC
        block.epi_timer[3, 3] = 2
        kernels.epithelial_update(params, rng, 0, block, block.interior)
        assert block.epi_state[3, 3] == EpiState.APOPTOTIC
        kernels.epithelial_update(params, rng, 1, block, block.interior)
        assert block.epi_state[3, 3] == EpiState.DEAD


class TestProduction:
    def test_producers_and_clamp(self, params, block):
        block.epi_state[2, 2] = EpiState.INCUBATING
        block.epi_state[3, 3] = EpiState.EXPRESSING
        block.epi_state[4, 4] = EpiState.APOPTOTIC
        block.epi_state[5, 5] = EpiState.DEAD
        block.virions[3, 3] = 0.95
        kernels.production_update(params, block, block.interior)
        assert block.virions[2, 2] == pytest.approx(params.virion_production)
        assert block.virions[3, 3] == 1.0  # clamped
        assert block.virions[4, 4] > 0
        assert block.virions[5, 5] == 0.0
        # Chemokine only from detectable states.
        assert block.chemokine[2, 2] == 0.0
        assert block.chemokine[3, 3] > 0
        assert block.chemokine[4, 4] > 0


class TestExtravasation:
    def test_attempt_schedule_deterministic(self, params, rng):
        a = kernels.extravasation_attempts(params, rng, 5, pool=40.0)
        b = kernels.extravasation_attempts(params, rng, 5, pool=40.0)
        np.testing.assert_array_equal(a["gid"], b["gid"])
        assert a["gid"].size in (8, 9)  # 40 * 0.2 = 8 (+ stochastic round)

    def test_zero_pool_no_attempts(self, params, rng):
        a = kernels.extravasation_attempts(params, rng, 0, pool=0.0)
        assert a["gid"].size == 0

    def test_needs_chemokine(self, params, block, rng):
        attempts = kernels.extravasation_attempts(params, rng, 0, pool=100.0)
        n = kernels.apply_extravasation(params, block, attempts)
        assert n == 0  # no signal anywhere
        assert block.tcell.sum() == 0

    def test_enters_at_signal(self, params, block, rng):
        block.chemokine[block.interior] = 1.0
        attempts = kernels.extravasation_attempts(params, rng, 0, pool=100.0)
        n = kernels.apply_extravasation(params, block, attempts)
        assert n > 0
        assert block.tcell.sum() == n
        assert (block.tcell_tissue_time[block.tcell == 1] >= 1).all()

    def test_no_double_occupancy(self, params, rng):
        """Many attempts on a tiny grid: occupancy stays 0/1."""
        p = SimCovParams.fast_test(dim=(3, 3))
        spec = GridSpec(p.dim)
        blk = VoxelBlock(spec, spec.domain)
        blk.chemokine[blk.interior] = 1.0
        attempts = kernels.extravasation_attempts(p, rng, 0, pool=500.0)
        n = kernels.apply_extravasation(p, blk, attempts)
        assert blk.tcell.max() <= 1
        assert n == blk.tcell.sum() <= 9
