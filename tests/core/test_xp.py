"""Tests for the array-module (``xp``) plug-in layer."""

import numpy as np
import pytest

from repro.core.xp import NUMPY, available_modules, get_array_module


class TestSelection:
    def test_numpy_always_available(self):
        assert "numpy" in available_modules()

    def test_default_is_numpy_singleton(self):
        assert get_array_module() is NUMPY
        assert get_array_module("numpy") is NUMPY
        assert get_array_module(None) is NUMPY

    def test_instance_passes_through(self):
        assert get_array_module(NUMPY) is NUMPY

    def test_auto_resolves_to_something_available(self):
        xp = get_array_module("auto")
        assert xp.name in available_modules()

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="numpy"):
            get_array_module("tensorflow")

    def test_missing_optional_module_raises_cleanly(self):
        for name in ("cupy", "torch"):
            if name in available_modules():
                continue
            with pytest.raises(ModuleNotFoundError, match="available"):
                get_array_module(name)


class TestNumpyAdapter:
    def test_transparent_delegation(self):
        arr = NUMPY.zeros((3, 3), dtype=np.float64)
        assert isinstance(arr, np.ndarray)
        assert NUMPY.maximum(arr, 1.0).max() == 1.0

    def test_spelling_helpers(self):
        arr = np.arange(4, dtype=np.int64)
        assert NUMPY.astype(arr, np.float64).dtype == np.float64
        copied = NUMPY.copy(arr)
        copied[0] = 99
        assert arr[0] == 0
        assert NUMPY.asnumpy(arr) is not None
        assert NUMPY.is_native(arr)
        assert not NUMPY.is_native([1, 2, 3])

    def test_repr_names_module(self):
        assert "numpy" in repr(NUMPY)


class TestOptionalModules:
    """Smoke for the GPU adapters — auto-skips when not installed."""

    def test_torch_adapter_runs_a_batched_step(self):
        pytest.importorskip("torch")
        from repro.core.params import SimCovParams
        from repro.engine.ensemble import EnsembleSimCov

        p = SimCovParams.fast_test(dim=(12, 12), num_infections=1)
        sim = EnsembleSimCov(p, seeds=[0, 1], array_module="torch")
        sim.run(5)
        assert len(sim.member_series[0]) == 5

    def test_cupy_adapter_runs_a_batched_step(self):
        pytest.importorskip("cupy")
        from repro.core.params import SimCovParams
        from repro.engine.ensemble import EnsembleSimCov

        p = SimCovParams.fast_test(dim=(12, 12), num_infections=1)
        sim = EnsembleSimCov(p, seeds=[0, 1], array_module="cupy")
        sim.run(5)
        assert len(sim.member_series[0]) == 5
