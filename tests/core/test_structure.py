"""Tests for airway structure (empty voxels, §2.2)."""

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.core.state import EpiState, VoxelBlock
from repro.core.structure import apply_structure, branching_airways_2d
from repro.grid.box import Box
from repro.grid.spec import GridSpec
from repro.simcov_gpu.simulation import SimCovGPU


class TestAirwayGeneration:
    def test_tree_shape(self):
        spec = GridSpec((64, 64))
        gids = branching_airways_2d(spec, generations=3)
        assert gids.size > 0
        frac = gids.size / spec.num_voxels
        assert 0.01 < frac < 0.5  # corridors, not a flood

    def test_trunk_enters_left_edge(self):
        spec = GridSpec((64, 64))
        coords = spec.unravel(branching_airways_2d(spec, generations=2))
        assert (coords[:, 0] == 0).any()

    def test_deterministic(self):
        spec = GridSpec((48, 48))
        a = branching_airways_2d(spec)
        b = branching_airways_2d(spec)
        np.testing.assert_array_equal(a, b)

    def test_more_generations_more_voxels(self):
        spec = GridSpec((96, 96))
        shallow = branching_airways_2d(spec, generations=1)
        deep = branching_airways_2d(spec, generations=5)
        assert deep.size > shallow.size

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            branching_airways_2d(GridSpec((8, 8, 8)))


class TestAirways3D:
    def test_tree_shape(self):
        from repro.core.structure import branching_airways_3d

        spec = GridSpec((24, 24, 24))
        gids = branching_airways_3d(spec, generations=3)
        assert gids.size > 0
        assert gids.size / spec.num_voxels < 0.3
        coords = spec.unravel(gids)
        assert (coords[:, 0] == 0).any()  # trunk enters the low-x face

    def test_rejects_2d(self):
        from repro.core.structure import branching_airways_3d

        with pytest.raises(ValueError):
            branching_airways_3d(GridSpec((8, 8)))

    def test_3d_structured_simulation_runs(self):
        from repro.core.structure import branching_airways_3d
        from repro.core.model import SequentialSimCov

        p = SimCovParams.fast_test(dim=(12, 12, 12), num_infections=2,
                                   num_steps=30)
        spec = GridSpec(p.dim)
        airways = branching_airways_3d(spec, generations=2, trunk_radius=1)
        sim = SequentialSimCov(p, seed=5, structure_gids=airways)
        sim.run()
        s = sim.series[-1]
        total = s.healthy + s.incubating + s.expressing + s.apoptotic + s.dead
        assert total == p.num_voxels - len(airways)


class TestApplyStructure:
    def test_empties_epithelium(self):
        spec = GridSpec((16, 16))
        blk = VoxelBlock(spec, spec.domain)
        n = apply_structure(blk, np.array([0, 17, 34]))
        assert n == 3
        assert blk.epi_state[1, 1] == EpiState.EMPTY  # gid 0 at (0,0)

    def test_applies_in_ghosts_too(self):
        spec = GridSpec((16, 8))
        blk = VoxelBlock(spec, Box((0, 0), (8, 8)))
        # gid of global (8, 0): first ghost row on the high-x side.
        gid = spec.ravel(np.array([8, 0]))
        n = apply_structure(blk, np.array([gid]))
        assert n == 0  # not owned
        assert blk.epi_state[9, 1] == EpiState.EMPTY  # but ghost updated

    def test_none_and_empty(self):
        spec = GridSpec((8, 8))
        blk = VoxelBlock(spec, spec.domain)
        assert apply_structure(blk, None) == 0
        assert apply_structure(blk, np.array([], dtype=np.int64)) == 0


class TestStructuredSimulation:
    @pytest.fixture(scope="class")
    def run(self):
        p = SimCovParams.fast_test(dim=(48, 48), num_infections=3,
                                   num_steps=120)
        spec = GridSpec(p.dim)
        airways = branching_airways_2d(spec, generations=3)
        sim = SequentialSimCov(p, seed=4, structure_gids=airways)
        sim.run()
        return p, airways, sim

    def test_airway_voxels_never_infected(self, run):
        p, airways, sim = run
        spec = sim.spec
        coords = spec.unravel(airways) + 1  # padded
        states = sim.block.epi_state[tuple(coords.T)]
        assert (states == EpiState.EMPTY).all()

    def test_cell_conservation_excludes_airways(self, run):
        p, airways, sim = run
        s = sim.series[-1]
        total = s.healthy + s.incubating + s.expressing + s.apoptotic + s.dead
        assert total == p.num_voxels - len(airways)

    def test_virus_diffuses_through_airways(self, run):
        """Airways carry no cells but concentrations still move through."""
        p, airways, sim = run
        coords = sim.spec.unravel(airways) + 1
        assert sim.block.virions[tuple(coords.T)].max() > 0

    def test_parallel_matches_sequential_with_structure(self, run):
        p, airways, sim = run
        gpu = SimCovGPU(p, num_devices=4, seed=4, structure_gids=airways)
        gpu.run(120)
        for f in ("epi_state", "tcell", "virions"):
            np.testing.assert_array_equal(
                getattr(sim.block, f)[sim.block.interior],
                gpu.gather_field(f),
                err_msg=f,
            )
