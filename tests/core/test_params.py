"""Tests for SimCovParams validation and derived quantities."""

import pytest

from repro.core.params import SimCovParams


class TestValidation:
    def test_defaults_valid(self):
        p = SimCovParams()
        assert p.num_voxels == 10_000

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            SimCovParams(dim=(100,))

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError):
            SimCovParams(dim=(0, 10))

    def test_rejects_too_many_foi(self):
        with pytest.raises(ValueError):
            SimCovParams(dim=(4, 4), num_infections=17)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            SimCovParams(infectivity=1.5)
        with pytest.raises(ValueError):
            SimCovParams(extravasate_fraction=-0.1)

    def test_rejects_bad_diffusion(self):
        with pytest.raises(ValueError):
            SimCovParams(virion_diffusion=2.0)

    def test_rejects_zero_period(self):
        with pytest.raises(ValueError):
            SimCovParams(incubation_period=0)

    def test_3d_dim(self):
        p = SimCovParams(dim=(10, 10, 5))
        assert p.ndim == 3
        assert p.num_voxels == 500


class TestDerived:
    def test_simulated_days(self):
        p = SimCovParams(num_steps=33_120)
        assert abs(p.simulated_days - 23.0) < 0.1

    def test_with_replaces(self):
        p = SimCovParams()
        q = p.with_(num_infections=8)
        assert q.num_infections == 8
        assert p.num_infections == 1
        assert q.dim == p.dim

    def test_with_validates(self):
        with pytest.raises(ValueError):
            SimCovParams().with_(infectivity=9.0)


class TestPresets:
    def test_default_covid_is_paper_base(self):
        p = SimCovParams.default_covid()
        assert p.dim == (10_000, 10_000)
        assert p.num_infections == 16
        assert p.num_steps == 33_120
        # Moses et al. defaults.
        assert p.incubation_period == 480
        assert p.expressing_period == 900
        assert p.apoptosis_period == 180
        assert p.tcell_initial_delay == 10_080

    def test_fast_test_is_small_and_quick(self):
        p = SimCovParams.fast_test()
        assert p.num_voxels <= 64 * 64
        assert p.tcell_initial_delay < 200

    def test_frozen(self):
        with pytest.raises(Exception):
            SimCovParams().dim = (5, 5)
