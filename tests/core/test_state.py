"""Tests for VoxelBlock state arrays."""

import numpy as np

from repro.core.state import EpiState, VoxelBlock
from repro.grid.box import Box
from repro.grid.spec import GridSpec


class TestVoxelBlock:
    def test_whole_domain_block(self):
        spec = GridSpec((8, 6))
        blk = VoxelBlock(spec, spec.domain)
        assert blk.shape == (10, 8)
        assert blk.interior == (slice(1, 9), slice(1, 7))
        assert blk.origin == (-1, -1)

    def test_all_interior_healthy(self):
        spec = GridSpec((8, 6))
        blk = VoxelBlock(spec, spec.domain)
        assert (blk.epi_state[blk.interior] == EpiState.HEALTHY).all()
        # Ghost ring outside the domain is EMPTY.
        assert (blk.epi_state[0, :] == EpiState.EMPTY).all()

    def test_subdomain_ghosts_in_domain_are_healthy(self):
        spec = GridSpec((8, 8))
        blk = VoxelBlock(spec, Box((0, 0), (4, 4)))
        # Ghost at local (5, 2) = global (4, 1): inside domain.
        assert blk.in_domain[5, 2]
        assert blk.epi_state[5, 2] == EpiState.HEALTHY
        # Ghost at local (0, 0) = global (-1, -1): outside.
        assert not blk.in_domain[0, 0]
        assert blk.epi_state[0, 0] == EpiState.EMPTY

    def test_gid_matches_spec(self):
        spec = GridSpec((8, 8))
        blk = VoxelBlock(spec, Box((2, 2), (6, 6)))
        # Local (1,1) is global (2,2).
        assert blk.gid[1, 1] == spec.ravel(np.array([2, 2]))
        assert blk.gid[4, 4] == spec.ravel(np.array([5, 5]))

    def test_gid_negative_outside(self):
        spec = GridSpec((4, 4))
        blk = VoxelBlock(spec, spec.domain)
        assert blk.gid[0, 0] == -1

    def test_state_arrays_bundle(self):
        spec = GridSpec((4, 4))
        blk = VoxelBlock(spec, spec.domain)
        bundle = blk.state_arrays()
        assert set(bundle) == set(VoxelBlock.STATE_FIELDS)
        assert bundle["virions"] is blk.virions

    def test_3d_block(self):
        spec = GridSpec((4, 4, 4))
        blk = VoxelBlock(spec, spec.domain)
        assert blk.shape == (6, 6, 6)
        assert (blk.epi_state[blk.interior] == EpiState.HEALTHY).all()


class TestActivityMask:
    def test_fresh_block_inactive(self):
        spec = GridSpec((6, 6))
        blk = VoxelBlock(spec, spec.domain)
        assert not blk.activity_mask(1e-6).any()

    def test_virions_activate(self):
        spec = GridSpec((6, 6))
        blk = VoxelBlock(spec, spec.domain)
        blk.virions[3, 3] = 0.5
        mask = blk.activity_mask(1e-6)
        assert mask.sum() == 1
        assert mask[2, 2]  # interior coords are padded coords - 1

    def test_tcell_and_infected_activate(self):
        spec = GridSpec((6, 6))
        blk = VoxelBlock(spec, spec.domain)
        blk.tcell[1, 1] = 1
        blk.epi_state[4, 4] = EpiState.EXPRESSING
        assert blk.activity_mask(1e-6).sum() == 2

    def test_subthreshold_chemokine_inactive(self):
        spec = GridSpec((6, 6))
        blk = VoxelBlock(spec, spec.domain)
        blk.chemokine[2, 2] = 1e-9
        assert not blk.activity_mask(1e-6).any()
        blk.chemokine[2, 2] = 1e-3
        assert blk.activity_mask(1e-6).sum() == 1

    def test_dead_cells_inactive(self):
        spec = GridSpec((6, 6))
        blk = VoxelBlock(spec, spec.domain)
        blk.epi_state[blk.interior] = EpiState.DEAD
        assert not blk.activity_mask(1e-6).any()
