"""Stress tests of the §3.1 tiebreak across rank/device boundaries.

A dense crowd of T cells straddling the subdomain boundary guarantees
move and bind conflicts in every step, including cross-boundary ones.
Conservation and exact sequential agreement under this load is the
sharpest test of the single-exchange bid protocol (GPU) and the two-wave
RPC protocol (CPU).
"""

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.core.state import EpiState
from repro.simcov_cpu.simulation import SimCovCPU
from repro.simcov_gpu.simulation import SimCovGPU


def crowd_tcells(sim_blocks, spec, density=0.35, seed=13, life=10_000):
    """Deterministically place a dense T-cell crowd into block state,
    identical for any decomposition."""
    rng = np.random.default_rng(seed)
    mask = rng.random(spec.shape) < density
    coords = np.argwhere(mask)
    for block in sim_blocks:
        local = coords - np.array(block.origin)
        ok = np.all(
            (local >= 0) & (local < np.array(block.shape)), axis=1
        )
        sel = tuple(local[ok].T)
        block.tcell[sel] = 1
        block.tcell_tissue_time[sel] = life
        block.tcell_bound_time[sel] = 0


def infect_band(sim_blocks, spec, rows, timer=10_000):
    """Set a band of expressing cells (bind targets) across the domain."""
    for block in sim_blocks:
        for x in rows:
            g = np.array([[x, y] for y in range(spec.shape[1])])
            local = g - np.array(block.origin)
            ok = np.all((local >= 0) & (local < np.array(block.shape)), axis=1)
            sel = tuple(local[ok].T)
            block.epi_state[sel] = EpiState.EXPRESSING
            block.epi_timer[sel] = timer


@pytest.fixture(scope="module")
def crowded_runs():
    # No extravasation/infection noise: pure movement + binding pressure.
    p = SimCovParams.fast_test(dim=(24, 24), num_infections=0, num_steps=40)
    p = p.with_(tcell_generation_rate=0.0, infectivity=0.0)
    spec_args = dict(seed=3)
    seq = SequentialSimCov(p, **spec_args)
    cpu = SimCovCPU(p, nranks=4, **spec_args)
    gpu = SimCovGPU(p, num_devices=4, tile_shape=(3, 3), **spec_args)
    for sim, blocks in ((seq, [seq.block]), (cpu, cpu.blocks), (gpu, gpu.blocks)):
        crowd_tcells(blocks, seq.spec)
        infect_band(blocks, seq.spec, rows=(11, 12))  # on the rank boundary
    # Parallel sims need ghosts consistent with the injected state; the
    # step's opening exchange handles that (CPU wave / GPU wave A).
    return p, seq, cpu, gpu


class TestCrowdedTiebreaks:
    def test_conservation_under_heavy_conflict(self, crowded_runs):
        p, seq, cpu, gpu = crowded_runs
        n0 = int(seq.block.tcell.sum())
        assert n0 > 150  # the crowd is dense
        for i in range(40):
            s1, s2, s3 = seq.step(), cpu.step(), gpu.step()
            assert s1.tcells_tissue == s2.tcells_tissue == s3.tcells_tissue
            assert s1.moves == s2.moves == s3.moves, f"step {i}"
            assert s1.binds == s2.binds == s3.binds, f"step {i}"

    def test_exact_state_after_crowded_run(self, crowded_runs):
        _, seq, cpu, gpu = crowded_runs
        for f in ("tcell", "tcell_tissue_time", "tcell_bound_time",
                  "epi_state", "epi_timer"):
            ref = getattr(seq.block, f)[seq.block.interior]
            np.testing.assert_array_equal(ref, cpu.gather_field(f), err_msg=f)
            np.testing.assert_array_equal(ref, gpu.gather_field(f), err_msg=f)

    def test_conflicts_actually_happened(self, crowded_runs):
        """The scenario must exercise contention: fewer moves than movers."""
        _, seq, _, _ = crowded_runs
        total_moves = sum(s.moves for s in seq.series._stats)
        tcells = seq.series[0].tcells_tissue
        steps = len(seq.series)
        # With 35% density, far fewer than one move per cell per step.
        assert 0 < total_moves < 0.8 * tcells * steps

    def test_binding_contention_resolved_once_per_cell(self, crowded_runs):
        """Every apoptotic transition was caused by exactly one winner:
        bound T cells never exceed apoptotic conversions."""
        _, seq, _, _ = crowded_runs
        total_binds = sum(s.binds for s in seq.series._stats)
        assert total_binds > 0
        bound_now = int((seq.block.tcell_bound_time > 0).sum())
        assert bound_now <= total_binds
