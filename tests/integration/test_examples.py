"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken one is a broken README.
Each runs in a subprocess with the repo's interpreter (they are all
self-contained and take seconds to a couple of minutes).
"""

import pathlib
import subprocess
import sys

import pytest

from repro.testing import subprocess_env

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))

pytestmark = pytest.mark.slow


def test_all_examples_discovered():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "patchy_lesion_study.py",
        "ant_foraging.py",
        "scaling_study.py",
        "parameter_fitting.py",
        "lung_3d.py",
    } <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, tmp_path):
    # Propagate the repo's src/ on PYTHONPATH so the subprocess can import
    # repro from a clean checkout (no install, any cwd).
    env = subprocess_env()
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=900,
        cwd=tmp_path,  # examples write results/ relative to cwd
        env=env,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
