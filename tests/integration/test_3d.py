"""3D simulations (§2.2: 'a 2D or 3D grid of voxels').

The paper's evaluation is 2D (matching the patient-data fits of [25]),
but the model and both parallel implementations support 3D — the §6
future-work path toward full-lung simulations.  These tests run small 3D
worlds end to end.
"""

import numpy as np
import pytest

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.simcov_cpu.simulation import SimCovCPU
from repro.simcov_gpu.simulation import SimCovGPU

STEPS = 70


@pytest.fixture(scope="module")
def reference_3d():
    p = SimCovParams.fast_test(dim=(10, 10, 10), num_infections=2,
                               num_steps=STEPS)
    seq = SequentialSimCov(p, seed=17)
    seq.run()
    return p, seq


class TestSequential3D:
    def test_dynamics(self, reference_3d):
        _, seq = reference_3d
        assert seq.series[-1].infected + seq.series[-1].dead > 0
        total = (
            seq.series[-1].healthy + seq.series[-1].incubating
            + seq.series[-1].expressing + seq.series[-1].apoptotic
            + seq.series[-1].dead
        )
        assert total == 1000

    def test_concentrations_bounded(self, reference_3d):
        _, seq = reference_3d
        assert 0.0 <= seq.block.virions.min()
        assert seq.block.virions.max() <= 1.0


class TestParallel3D:
    def test_gpu_matches_sequential(self, reference_3d):
        p, seq = reference_3d
        gpu = SimCovGPU(p, num_devices=4, seed=17, tile_shape=(3, 3, 3))
        gpu.run(STEPS)
        for f in ("epi_state", "tcell", "virions", "tcell_tissue_time"):
            np.testing.assert_array_equal(
                getattr(seq.block, f)[seq.block.interior],
                gpu.gather_field(f),
                err_msg=f,
            )

    def test_cpu_matches_sequential(self, reference_3d):
        p, seq = reference_3d
        cpu = SimCovCPU(p, nranks=3, seed=17)
        cpu.run(STEPS)
        for f in ("epi_state", "tcell", "virions"):
            np.testing.assert_array_equal(
                getattr(seq.block, f)[seq.block.interior],
                cpu.gather_field(f),
                err_msg=f,
            )

    def test_3d_decomposition_has_26_neighbor_exchange(self, reference_3d):
        p, _ = reference_3d
        gpu = SimCovGPU(p, num_devices=8, seed=17)
        gpu.step()
        # A 2x2x2 device grid: every device has 7 neighbors to copy to.
        assert gpu.step_work[0]["ledger"].copies_intra > 0
