"""Cross-implementation equivalence: the reproduction's strongest result.

The paper (§4.1) demonstrates *statistical* agreement between SIMCoV-CPU
and SIMCoV-GPU.  Because this reproduction keys all randomness by global
voxel id, we can show the stronger property: the sequential reference,
SIMCoV-CPU (any rank count/decomposition) and SIMCoV-GPU (any device
count, any optimization variant) produce bitwise-identical voxel state.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.grid.decomposition import DecompositionKind
from repro.simcov_cpu.simulation import SimCovCPU
from repro.simcov_gpu.simulation import SimCovGPU
from repro.simcov_gpu.variants import GpuVariant

FIELDS = (
    "epi_state",
    "virions",
    "chemokine",
    "tcell",
    "tcell_tissue_time",
    "tcell_bound_time",
    "epi_timer",
)

INT_STATS = (
    "healthy", "incubating", "expressing", "apoptotic", "dead",
    "tcells_tissue", "extravasations", "binds", "moves",
)
FLOAT_STATS = ("virions_total", "chemokine_total", "tcells_vasculature")


def assert_stats_match(a, b, label):
    for f in INT_STATS:
        assert getattr(a, f) == getattr(b, f), f"{label}: {f} {getattr(a,f)} vs {getattr(b,f)}"
    for f in FLOAT_STATS:
        # Reduction order differs across implementations; integer-valued
        # sums of [0,1] fractions agree to ~1 ulp per element.
        assert np.isclose(getattr(a, f), getattr(b, f), rtol=1e-12), f"{label}: {f}"


def assert_fields_match(seq, sim, label):
    interior = seq.block.interior
    for name in FIELDS:
        ref = getattr(seq.block, name)[interior]
        got = sim.gather_field(name)
        assert np.array_equal(ref, got), (
            f"{label}: field {name} differs at "
            f"{np.argwhere(ref != got)[:3].tolist()}"
        )


#: Enough steps to cover the full dynamic range: infection growth, T-cell
#: arrival (delay=60), movement conflicts, binding, clearance.
STEPS = 140


@pytest.fixture(scope="module")
def reference():
    p = SimCovParams.fast_test(dim=(24, 24), num_infections=3, num_steps=STEPS)
    seq = SequentialSimCov(p, seed=42)
    seq.run(STEPS)
    return p, seq


class TestCpuEquivalence:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_block_decomposition(self, reference, nranks):
        p, seq = reference
        cpu = SimCovCPU(p, nranks=nranks, seed=42)
        for i in range(STEPS):
            assert_stats_match(seq.series[i], cpu.step(), f"cpu{nranks} step {i}")
        assert_fields_match(seq, cpu, f"cpu{nranks}")

    def test_linear_decomposition(self, reference):
        p, seq = reference
        cpu = SimCovCPU(
            p, nranks=3, seed=42, decomposition=DecompositionKind.LINEAR
        )
        cpu.run(STEPS)
        assert_fields_match(seq, cpu, "cpu-linear")
        assert_stats_match(seq.series[-1], cpu.series[-1], "cpu-linear")


class TestGpuEquivalence:
    @pytest.mark.parametrize(
        "variant",
        [GpuVariant.UNOPTIMIZED, GpuVariant.COMBINED],
        ids=lambda v: v.value,
    )
    def test_variants(self, reference, variant):
        p, seq = reference
        gpu = SimCovGPU(
            p, num_devices=4, seed=42, variant=variant, tile_shape=(4, 4)
        )
        for i in range(STEPS):
            assert_stats_match(seq.series[i], gpu.step(), f"{variant} step {i}")
        assert_fields_match(seq, gpu, str(variant))

    def test_tiling_only_variant(self, reference):
        p, seq = reference
        gpu = SimCovGPU(
            p, num_devices=2, seed=42,
            variant=GpuVariant.MEMORY_TILING, tile_shape=(3, 3),
        )
        gpu.run(STEPS)
        assert_fields_match(seq, gpu, "gpu-tiling")

    def test_fast_reduction_variant(self, reference):
        p, seq = reference
        gpu = SimCovGPU(
            p, num_devices=4, seed=42, variant=GpuVariant.FAST_REDUCTION
        )
        gpu.run(STEPS)
        assert_fields_match(seq, gpu, "gpu-fastred")
        assert_stats_match(seq.series[-1], gpu.series[-1], "gpu-fastred")

    def test_device_count_invariance(self, reference):
        """1 device must equal 4 devices exactly (decomposition-free RNG)."""
        p, _ = reference
        a = SimCovGPU(p, num_devices=1, seed=7, tile_shape=(4, 4))
        b = SimCovGPU(p, num_devices=4, seed=7, tile_shape=(4, 4))
        a.run(60)
        b.run(60)
        for name in FIELDS:
            np.testing.assert_array_equal(
                a.gather_field(name), b.gather_field(name), err_msg=name
            )

    def test_sweep_period_invariance(self, reference):
        """Sweeping every step vs at the maximum sound period must not
        change results — only work (the §3.2 safety claim)."""
        p, seq = reference
        eager = SimCovGPU(p, num_devices=4, seed=42, tile_shape=(4, 4),
                          sweep_period=1)
        eager.run(STEPS)
        assert_fields_match(seq, eager, "gpu-sweep1")


class TestCpuGpuAgainstEachOther:
    def test_cpu_gpu_direct(self, reference):
        p, _ = reference
        cpu = SimCovCPU(p, nranks=6, seed=99)
        gpu = SimCovGPU(p, num_devices=6, seed=99, tile_shape=(3, 3))
        cpu.run(80)
        gpu.run(80)
        for name in FIELDS:
            np.testing.assert_array_equal(
                cpu.gather_field(name), gpu.gather_field(name), err_msg=name
            )


class TestEngineUnification:
    """All three drivers execute through the shared phase-pipeline engine
    (repro.engine) and stay bitwise identical when driven through it."""

    ENGINE_STEPS = 40  # > tcell_initial_delay at fast_test compression

    def _drivers_2d(self):
        p = SimCovParams.fast_test(dim=(16, 16), num_infections=3,
                                   num_steps=self.ENGINE_STEPS)
        return p, [
            SequentialSimCov(p, seed=5),
            SimCovCPU(p, nranks=4, seed=5),
            SimCovGPU(p, num_devices=4, seed=5, tile_shape=(4, 4)),
        ]

    def test_all_drivers_share_the_step_engine(self):
        from repro.engine import (
            PHASE_ORDER,
            ExecutionBackend,
            StepEngine,
            validate_schedule,
        )

        _, sims = self._drivers_2d()
        for sim in sims:
            assert isinstance(sim.engine, StepEngine)
            assert isinstance(sim.backend, ExecutionBackend)
            assert sim.engine.backend is sim.backend
            # The declared schedule is a valid subsequence of the canonical
            # phase order.
            validate_schedule(sim.schedule)
            names = [ph.name for ph in sim.schedule]
            assert set(names) <= set(PHASE_ORDER)
            # Stepping goes through the engine: state advances in lockstep.
            sim.step()
            assert sim.step_num == sim.engine.step_num == 1

    def test_engine_equivalence_2d(self):
        _, sims = self._drivers_2d()
        seq, cpu, gpu = sims
        for sim in sims:
            sim.engine.run(self.ENGINE_STEPS)
        for i in range(self.ENGINE_STEPS):
            assert_stats_match(seq.series[i], cpu.series[i], f"engine-cpu {i}")
            assert_stats_match(seq.series[i], gpu.series[i], f"engine-gpu {i}")
        assert_fields_match(seq, cpu, "engine-cpu")
        assert_fields_match(seq, gpu, "engine-gpu")

    def test_engine_equivalence_3d(self):
        steps = 30
        p = SimCovParams.fast_test(dim=(8, 8, 8), num_infections=2,
                                   num_steps=steps)
        seq = SequentialSimCov(p, seed=13)
        cpu = SimCovCPU(p, nranks=4, seed=13)
        gpu = SimCovGPU(p, num_devices=8, seed=13, tile_shape=(4, 4, 4))
        for sim in (seq, cpu, gpu):
            sim.engine.run(steps)
        for i in range(steps):
            assert_stats_match(seq.series[i], cpu.series[i], f"3d-cpu {i}")
            assert_stats_match(seq.series[i], gpu.series[i], f"3d-gpu {i}")
        assert_fields_match(seq, cpu, "3d-cpu")
        assert_fields_match(seq, gpu, "3d-gpu")

    def test_every_phase_reports_time_and_counts(self):
        _, sims = self._drivers_2d()
        for sim in sims:
            sim.run(10)
            summary = sim.phase_metrics.summary()
            for ph in sim.schedule:
                row = summary[ph.name]
                assert row["calls"] + row["skips"] == 10, ph.name
                assert row["seconds"] >= 0.0
            # Executed phases surface per-step wall time in step_work too.
            for rec in sim.step_work:
                assert set(rec["phase_seconds"]) <= {p.name for p in sim.schedule}
