"""Unit tests for Box geometry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.box import Box


def boxes(ndim=2, lo=-20, hi=20):
    coord = st.integers(min_value=lo, max_value=hi)
    return st.tuples(
        st.lists(coord, min_size=ndim, max_size=ndim),
        st.lists(st.integers(min_value=0, max_value=15), min_size=ndim, max_size=ndim),
    ).map(lambda t: Box(tuple(t[0]), tuple(a + b for a, b in zip(t[0], t[1]))))


class TestBoxBasics:
    def test_shape_and_size(self):
        b = Box((1, 2), (4, 7))
        assert b.shape == (3, 5)
        assert b.size == 15
        assert not b.is_empty

    def test_empty_box(self):
        b = Box((3, 3), (3, 5))
        assert b.is_empty
        assert b.size == 0
        assert b.coords().shape == (0, 2)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Box((0, 0), (1, 1, 1))

    def test_contains(self):
        b = Box((0, 0), (4, 4))
        pts = np.array([[0, 0], [3, 3], [4, 0], [-1, 2]])
        np.testing.assert_array_equal(b.contains(pts), [True, True, False, False])

    def test_expand_and_clip(self):
        b = Box((2, 2), (4, 4))
        e = b.expand(1)
        assert e == Box((1, 1), (5, 5))
        assert e.clip(Box((0, 0), (4, 10))) == Box((1, 1), (4, 5))

    def test_shift(self):
        assert Box((0, 0), (2, 2)).shift((3, -1)) == Box((3, -1), (5, 1))

    def test_slices_from(self):
        b = Box((5, 6), (8, 9))
        sl = b.slices_from((4, 4))
        arr = np.zeros((10, 10))
        arr[sl] = 1
        assert arr.sum() == 9
        assert arr[1, 2] == 1 and arr[3, 4] == 1

    def test_coords_cover_box(self):
        b = Box((1, 1), (3, 4))
        c = b.coords()
        assert c.shape == (6, 2)
        assert b.contains(c).all()
        assert len(np.unique(c[:, 0] * 100 + c[:, 1])) == 6

    def test_3d(self):
        b = Box((0, 0, 0), (2, 3, 4))
        assert b.size == 24
        assert b.coords().shape == (24, 3)


class TestBoxProperties:
    @given(a=boxes(), b=boxes())
    @settings(max_examples=100, deadline=None)
    def test_intersection_commutes_and_bounds(self, a, b):
        i1 = a.intersect(b)
        i2 = b.intersect(a)
        assert i1.size == i2.size
        assert i1.size <= min(a.size, b.size)

    @given(a=boxes(), b=boxes())
    @settings(max_examples=100, deadline=None)
    def test_intersection_membership(self, a, b):
        inter = a.intersect(b)
        if not inter.is_empty:
            pts = inter.coords()
            assert a.contains(pts).all()
            assert b.contains(pts).all()

    @given(a=boxes(), w=st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_expand_shrink_roundtrip(self, a, w):
        if not a.is_empty:
            assert a.expand(w).expand(-w) == a
