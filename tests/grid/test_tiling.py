"""Tests for memory tiling and the activation-sweep safety protocol."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.tiling import TileGrid, _dilate


class TestTileGeometry:
    def test_exact_tiling(self):
        tg = TileGrid((12, 12), (3, 3))
        assert tg.tiles_per_dim == (4, 4)
        assert tg.num_tiles == 16
        assert sum(tg.tile_box(i).size for i in np.ndindex(4, 4)) == 144

    def test_ragged_edge_tiles(self):
        tg = TileGrid((10, 7), (4, 4))
        assert tg.tiles_per_dim == (3, 2)
        assert tg.tile_box((2, 1)).shape == (2, 3)
        total = sum(
            tg.tile_box(tuple(i)).size for i in np.ndindex(*tg.tiles_per_dim)
        )
        assert total == 70

    def test_tile_of_voxel(self):
        tg = TileGrid((12, 12), (3, 3))
        np.testing.assert_array_equal(tg.tile_of_voxel([[0, 0], [5, 8], [11, 11]]),
                                      [[0, 0], [1, 2], [3, 3]])

    def test_rejects_oversized_tile(self):
        with pytest.raises(ValueError):
            TileGrid((4, 4), (8, 4))

    def test_max_sweep_period(self):
        assert TileGrid((12, 12), (3, 4)).max_sweep_period() == 3


class TestActivation:
    def test_initially_all_active(self):
        """Fresh tile grids start fully active (safe default before the
        first sweep observes real activity)."""
        tg = TileGrid((12, 12), (3, 3))
        assert tg.num_active == 16

    def test_sweep_finds_activity_and_dilates(self):
        tg = TileGrid((15, 15), (3, 3), ghost=0)
        mask = np.zeros((15, 15), dtype=bool)
        mask[7, 7] = True  # center of tile (2,2)
        tg.sweep(mask)
        active = set(tg.active_tile_indices())
        expected = {(i, j) for i in (1, 2, 3) for j in (1, 2, 3)}
        assert active == expected

    def test_sweep_pins_boundary_tiles(self):
        tg = TileGrid((15, 15), (3, 3), ghost=1)
        tg.sweep(np.zeros((15, 15), dtype=bool))
        active = set(tg.active_tile_indices())
        # All 16 boundary tiles of the 5x5 tile grid stay active.
        boundary = {
            (i, j)
            for i in range(5)
            for j in range(5)
            if i in (0, 4) or j in (0, 4)
        }
        assert active == boundary

    def test_no_ghost_no_pinning(self):
        tg = TileGrid((15, 15), (3, 3), ghost=0)
        tg.sweep(np.zeros((15, 15), dtype=bool))
        assert tg.num_active == 0

    def test_voxel_mask_matches_tiles(self):
        tg = TileGrid((12, 12), (3, 3), ghost=0)
        mask = np.zeros((12, 12), dtype=bool)
        mask[0, 0] = True
        tg.sweep(mask)
        vm = tg.voxel_mask()
        assert vm[:6, :6].all()  # (0,0) tile + dilation
        assert not vm[9:, 9:].any()

    def test_active_voxel_count(self):
        tg = TileGrid((12, 12), (3, 3), ghost=0)
        mask = np.zeros((12, 12), dtype=bool)
        mask[5, 5] = True
        tg.sweep(mask)
        assert tg.active_voxel_count() == tg.voxel_mask().sum()

    def test_sweep_rejects_bad_shape(self):
        tg = TileGrid((12, 12), (3, 3))
        with pytest.raises(ValueError):
            tg.sweep(np.zeros((5, 5), dtype=bool))


class TestSweepSafety:
    """The §3.2 invariant: with a 1-tile buffer and sweep period <= tile
    side, activity moving <=1 voxel/step can never escape the active set."""

    @given(
        seed=st.integers(min_value=0, max_value=300),
        period=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_walk_never_escapes(self, seed, period):
        tile_side = 4
        assert period <= tile_side
        tg = TileGrid((16, 16), (tile_side, tile_side), ghost=0)
        rng = np.random.default_rng(seed)
        pos = np.array([8, 8])
        mask = np.zeros((16, 16), dtype=bool)
        mask[tuple(pos)] = True
        tg.sweep(mask)
        for step in range(1, 40):
            step_vec = rng.integers(-1, 2, size=2)
            pos = np.clip(pos + step_vec, 0, 15)
            mask[...] = False
            mask[tuple(pos)] = True
            # The walker must be inside the active set at all times.
            assert tg.voxel_mask()[tuple(pos)], f"escaped at step {step}"
            if step % period == 0:
                tg.sweep(mask)

    def test_two_walkers_opposite_directions(self):
        tg = TileGrid((20, 20), (4, 4), ghost=0)
        a, b = np.array([10, 10]), np.array([10, 10])
        mask = np.zeros((20, 20), dtype=bool)
        mask[tuple(a)] = True
        tg.sweep(mask)
        for step in range(1, 30):
            a = np.clip(a + [1, 1], 0, 19)
            b = np.clip(b + [-1, -1], 0, 19)
            vm = tg.voxel_mask()
            assert vm[tuple(a)] and vm[tuple(b)]
            if step % 4 == 0:
                mask[...] = False
                mask[tuple(a)] = True
                mask[tuple(b)] = True
                tg.sweep(mask)


class TestDilate:
    def test_single_cell(self):
        m = np.zeros((5, 5), dtype=bool)
        m[2, 2] = True
        d = _dilate(m)
        assert d[1:4, 1:4].all()
        assert d.sum() == 9

    def test_corner_cell(self):
        m = np.zeros((4, 4), dtype=bool)
        m[0, 0] = True
        d = _dilate(m)
        assert d[:2, :2].all()
        assert d.sum() == 4

    def test_matches_scipy(self):
        from scipy import ndimage

        rng = np.random.default_rng(0)
        m = rng.random((10, 10)) < 0.2
        expected = ndimage.binary_dilation(m, structure=np.ones((3, 3), bool))
        np.testing.assert_array_equal(_dilate(m), expected)

    def test_3d_matches_scipy(self):
        from scipy import ndimage

        rng = np.random.default_rng(1)
        m = rng.random((6, 6, 6)) < 0.15
        expected = ndimage.binary_dilation(m, structure=np.ones((3, 3, 3), bool))
        np.testing.assert_array_equal(_dilate(m), expected)
