"""Tests for halo exchange: REPLACE and MAX merge semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.decomposition import Decomposition
from repro.grid.halo import HaloExchanger, MergeMode
from repro.grid.spec import GridSpec


def make_exchanger(shape=(12, 12), nranks=4, ghost=1, on_message=None):
    spec = GridSpec(shape)
    decomp = Decomposition.blocks(spec, nranks)
    return HaloExchanger(decomp, ghost=ghost, on_message=on_message)


class TestGeometry:
    def test_local_shape(self):
        ex = make_exchanger((12, 12), 4)
        assert ex.local_shape(0) == (8, 8)  # 6x6 owned + 2 ghost

    def test_owned_slices_select_interior(self):
        ex = make_exchanger()
        arr = ex.allocate(0, np.int32)
        arr[ex.owned_slices(0)] = 1
        assert arr.sum() == 36
        assert arr[0, :].sum() == 0 and arr[-1, :].sum() == 0

    def test_scatter_gather_roundtrip(self):
        ex = make_exchanger((10, 14), 4)
        rng = np.random.default_rng(0)
        g = rng.integers(0, 100, size=(10, 14)).astype(np.int64)
        arrays = ex.scatter_global(g)
        np.testing.assert_array_equal(ex.gather_global(arrays), g)


class TestReplaceExchange:
    def test_ghosts_match_owner_values(self):
        spec = GridSpec((12, 12))
        decomp = Decomposition.blocks(spec, 4)
        ex = HaloExchanger(decomp)
        rng = np.random.default_rng(1)
        g = rng.integers(0, 1000, size=spec.shape).astype(np.int64)
        # Scatter WITHOUT ghosts, then exchange must fill them.
        arrays = []
        for rank in range(4):
            arr = ex.allocate(rank, np.int64)
            arr[ex.owned_slices(rank)] = g[
                decomp.boxes[rank].slices_from((0, 0))
            ]
            arrays.append(arr)
        ex.exchange(arrays, MergeMode.REPLACE)
        for rank in range(4):
            ext = ex.extents[rank]
            local = arrays[rank][ex.region_slices(rank, ext)]
            np.testing.assert_array_equal(
                local, g[ext.slices_from((0, 0))],
                err_msg=f"rank {rank} extent mismatch",
            )

    def test_corner_ghosts_filled(self):
        """Diagonal-neighbor corners must arrive (T cells move diagonally)."""
        spec = GridSpec((8, 8))
        decomp = Decomposition.blocks(spec, 4)
        ex = HaloExchanger(decomp)
        arrays = [ex.allocate(r, np.int64) for r in range(4)]
        for rank in range(4):
            arrays[rank][ex.owned_slices(rank)] = rank + 1
        ex.exchange(arrays, MergeMode.REPLACE)
        # Rank 0 owns [0:4, 0:4]; its ghost corner voxel (4,4) belongs to the
        # diagonal rank owning [4:8, 4:8].
        diag = int(decomp.owner_of(np.array([4, 4])))
        corner_val = arrays[0][ex.region_slices(0, ex.extents[0])][-1, -1]
        assert corner_val == diag + 1

    def test_3d_exchange(self):
        spec = GridSpec((6, 6, 6))
        decomp = Decomposition.blocks(spec, 8)
        ex = HaloExchanger(decomp)
        rng = np.random.default_rng(2)
        g = rng.integers(0, 50, size=spec.shape).astype(np.int32)
        arrays = ex.scatter_global(g)
        # Perturb ghosts, exchange must restore them.
        for rank in range(8):
            arrays[rank][0, :, :] = -1 if arrays[rank][0, 0, 0] != -2 else -1
        ex.exchange(arrays, MergeMode.REPLACE)
        for rank in range(8):
            ext = ex.extents[rank]
            np.testing.assert_array_equal(
                arrays[rank][ex.region_slices(rank, ext)],
                g[ext.slices_from((0, 0, 0))],
            )


class TestMaxExchange:
    def test_max_merge_equals_global_max(self):
        """After one MAX wave, every copy of a voxel equals the global max of
        all contributions — the single-communication bid-merge of §3.1."""
        spec = GridSpec((12, 12))
        decomp = Decomposition.blocks(spec, 4)
        ex = HaloExchanger(decomp)
        rng = np.random.default_rng(3)
        arrays = [ex.allocate(r, np.uint64) for r in range(4)]
        # Every rank writes random bids over its WHOLE extent (own + ghost),
        # simulating local bids and ghost-targeted bids.
        for rank in range(4):
            ext = ex.extents[rank]
            sl = ex.region_slices(rank, ext)
            arrays[rank][sl] = rng.integers(
                1, 2**63, size=arrays[rank][sl].shape, dtype=np.uint64
            )
        # Global truth: elementwise max over all ranks covering each voxel.
        truth = np.zeros(spec.shape, dtype=np.uint64)
        for rank in range(4):
            ext = ex.extents[rank]
            gsl = ext.slices_from((0, 0))
            np.maximum(
                truth[gsl],
                arrays[rank][ex.region_slices(rank, ext)],
                out=truth[gsl],
            )
        ex.exchange(arrays, MergeMode.MAX)
        for rank in range(4):
            ext = ex.extents[rank]
            np.testing.assert_array_equal(
                arrays[rank][ex.region_slices(rank, ext)],
                truth[ext.slices_from((0, 0))],
                err_msg=f"rank {rank}",
            )

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_max_merge_property_many_layouts(self, seed):
        rng = np.random.default_rng(seed)
        nranks = int(rng.integers(1, 9))
        shape = (int(rng.integers(nranks, 20)), int(rng.integers(nranks, 20)))
        spec = GridSpec(shape)
        decomp = Decomposition.blocks(spec, nranks)
        ex = HaloExchanger(decomp)
        arrays = []
        truth = np.zeros(spec.shape, dtype=np.uint64)
        for rank in range(nranks):
            arr = ex.allocate(rank, np.uint64)
            ext = ex.extents[rank]
            sl = ex.region_slices(rank, ext)
            arr[sl] = rng.integers(0, 1000, size=arr[sl].shape, dtype=np.uint64)
            gsl = ext.slices_from((0, 0))
            np.maximum(truth[gsl], arr[sl], out=truth[gsl])
            arrays.append(arr)
        ex.exchange(arrays, MergeMode.MAX)
        for rank in range(nranks):
            ext = ex.extents[rank]
            np.testing.assert_array_equal(
                arrays[rank][ex.region_slices(rank, ext)],
                truth[ext.slices_from((0, 0))],
            )


class TestAccounting:
    def test_message_bytes_counted(self):
        messages = []
        ex = make_exchanger(
            (12, 12), 4, on_message=lambda s, d, n: messages.append((s, d, n))
        )
        arrays = [ex.allocate(r, np.float64) for r in range(4)]
        ex.exchange(arrays, MergeMode.REPLACE)
        assert messages
        # Each rank exchanges with 3 neighbors: 2 edges (6 voxels) + corner (1).
        total_bytes = sum(n for _, _, n in messages)
        expected_voxels = 4 * (6 + 6 + 1)
        assert total_bytes == expected_voxels * 8

    def test_bad_array_count_rejected(self):
        ex = make_exchanger()
        with pytest.raises(ValueError):
            ex.exchange([ex.allocate(0, np.int32)], MergeMode.REPLACE)

    def test_bad_shape_rejected(self):
        ex = make_exchanger()
        arrays = [ex.allocate(r, np.int32) for r in range(4)]
        arrays[2] = np.zeros((3, 3), dtype=np.int32)
        with pytest.raises(ValueError):
            ex.exchange(arrays, MergeMode.REPLACE)
