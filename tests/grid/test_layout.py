"""Tests for the tile-contiguous zig-zag layout (Fig 3B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.layout import TiledLayout
from repro.grid.tiling import TileGrid


def layout(owned=(12, 12), tile=(3, 3)):
    return TiledLayout(TileGrid(owned, tile, ghost=0))


class TestBijection:
    def test_offsets_are_a_permutation(self):
        lay = layout()
        coords = np.stack(np.meshgrid(np.arange(12), np.arange(12), indexing="ij"), -1)
        offs = lay.offset_of(coords.reshape(-1, 2))
        assert sorted(offs.tolist()) == list(range(144))

    def test_roundtrip(self):
        lay = layout()
        offs = np.arange(144)
        back = lay.offset_of(lay.coords_of(offs))
        np.testing.assert_array_equal(back, offs)

    def test_ragged_edges_bijective(self):
        lay = layout((10, 7), (4, 4))
        offs = np.arange(70)
        coords = lay.coords_of(offs)
        assert coords.min() >= 0
        assert (coords < np.array([10, 7])).all()
        np.testing.assert_array_equal(lay.offset_of(coords), offs)

    def test_3d_bijective(self):
        lay = TiledLayout(TileGrid((6, 6, 6), (2, 3, 2), ghost=0))
        offs = np.arange(216)
        np.testing.assert_array_equal(lay.offset_of(lay.coords_of(offs)), offs)

    @given(
        ow=st.integers(min_value=4, max_value=20),
        oh=st.integers(min_value=4, max_value=20),
        tw=st.integers(min_value=1, max_value=4),
        th=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_bijection_property(self, ow, oh, tw, th):
        lay = TiledLayout(TileGrid((ow, oh), (tw, th), ghost=0))
        offs = np.arange(ow * oh)
        np.testing.assert_array_equal(lay.offset_of(lay.coords_of(offs)), offs)


class TestTileContiguity:
    def test_tile_voxels_contiguous_in_memory(self):
        """The defining property of §3.2: each tile's voxels occupy a
        contiguous span of memory."""
        tg = TileGrid((12, 12), (3, 3), ghost=0)
        lay = TiledLayout(tg)
        for idx in np.ndindex(4, 4):
            box = tg.tile_box(idx)
            offs = np.sort(lay.offset_of(box.coords()))
            assert offs[-1] - offs[0] == box.size - 1

    def test_zigzag_path_visits_adjacent_tiles(self):
        """Consecutive tiles along the layout path are spatial neighbors."""
        tg = TileGrid((12, 12), (3, 3), ghost=0)
        lay = TiledLayout(tg)
        order = lay._tile_order
        for a, b in zip(order, order[1:]):
            assert max(abs(x - y) for x, y in zip(a, b)) == 1

    def test_zigzag_path_adjacent_3d(self):
        tg = TileGrid((8, 8, 8), (2, 2, 2), ghost=0)
        lay = TiledLayout(tg)
        order = lay._tile_order
        for a, b in zip(order, order[1:]):
            assert max(abs(x - y) for x, y in zip(a, b)) == 1


class TestLocality:
    def test_tiled_layout_beats_row_major_on_columns(self):
        """Fig 3's motivation: nearby voxels are more likely cached.  For a
        square region, mean memory distance between vertical neighbors is
        much smaller with 2D tiles than with plain row-major order (where it
        is the full row width)."""
        lay = layout((16, 16), (4, 4))
        tiled = lay.mean_stride()
        row_major = 16.0  # distance between (i, j) and (i+1, j) in C order
        assert tiled < row_major

    def test_degenerate_single_row(self):
        lay = TiledLayout(TileGrid((1, 8), (1, 4), ghost=0))
        assert lay.mean_stride() == 0.0
