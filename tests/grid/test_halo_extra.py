"""Gap-filling tests: multi-field exchange, ghost widths, edge cases."""

import numpy as np
import pytest

from repro.grid.decomposition import Decomposition
from repro.grid.halo import HaloExchanger, MergeMode
from repro.grid.spec import GridSpec


class TestExchangeMany:
    def test_multiple_fields_one_wave(self):
        spec = GridSpec((8, 8))
        decomp = Decomposition.blocks(spec, 4)
        ex = HaloExchanger(decomp)
        rng = np.random.default_rng(0)
        ga = rng.integers(0, 9, size=spec.shape).astype(np.int32)
        gb = rng.random(spec.shape)
        fields = {"a": ex.scatter_global(ga), "b": ex.scatter_global(gb)}
        # Perturb ghosts.
        for arrays in fields.values():
            for arr in arrays:
                arr[0, :] = 0
        ex.exchange_many(fields, MergeMode.REPLACE)
        np.testing.assert_array_equal(ex.gather_global(fields["a"]), ga)
        np.testing.assert_allclose(ex.gather_global(fields["b"]), gb)


class TestGhostWidth2:
    def test_wider_halo_replace(self):
        """ghost=2 halos (e.g. for 2-voxel-per-step physics) exchange
        correctly too."""
        spec = GridSpec((12, 12))
        decomp = Decomposition.blocks(spec, 4)
        ex = HaloExchanger(decomp, ghost=2)
        assert ex.local_shape(0) == (10, 10)
        g = np.arange(144).reshape(12, 12).astype(np.int64)
        arrays = ex.scatter_global(g)
        ex.exchange(arrays, MergeMode.REPLACE)
        for rank in range(4):
            ext = ex.extents[rank]
            np.testing.assert_array_equal(
                arrays[rank][ex.region_slices(rank, ext)],
                g[ext.slices_from((0, 0))],
            )

    def test_wider_halo_max(self):
        spec = GridSpec((12, 12))
        decomp = Decomposition.blocks(spec, 4)
        ex = HaloExchanger(decomp, ghost=2)
        rng = np.random.default_rng(1)
        arrays = []
        truth = np.zeros(spec.shape, dtype=np.uint64)
        for rank in range(4):
            arr = ex.allocate(rank, np.uint64)
            ext = ex.extents[rank]
            sl = ex.region_slices(rank, ext)
            arr[sl] = rng.integers(0, 100, size=arr[sl].shape, dtype=np.uint64)
            gsl = ext.slices_from((0, 0))
            np.maximum(truth[gsl], arr[sl], out=truth[gsl])
            arrays.append(arr)
        ex.exchange(arrays, MergeMode.MAX)
        for rank in range(4):
            ext = ex.extents[rank]
            np.testing.assert_array_equal(
                arrays[rank][ex.region_slices(rank, ext)],
                truth[ext.slices_from((0, 0))],
            )


class TestSingleRank:
    def test_no_routes(self):
        spec = GridSpec((6, 6))
        decomp = Decomposition.blocks(spec, 1)
        ex = HaloExchanger(decomp)
        assert ex.replace_routes == []
        arr = ex.allocate(0, np.float64)
        ex.exchange([arr], MergeMode.REPLACE)  # no-op, no error

    def test_gather_scatter_degenerate(self):
        spec = GridSpec((5, 7))
        decomp = Decomposition.blocks(spec, 1)
        ex = HaloExchanger(decomp)
        g = np.arange(35.0).reshape(5, 7)
        np.testing.assert_array_equal(
            ex.gather_global(ex.scatter_global(g)), g
        )
