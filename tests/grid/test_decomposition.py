"""Tests for domain decomposition: exact partition, ownership, adjacency."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.decomposition import Decomposition, DecompositionKind
from repro.grid.spec import GridSpec


class TestConstruction:
    def test_linear_2d(self):
        d = Decomposition.linear(GridSpec((8, 4)), 4)
        assert d.nranks == 4
        assert d.proc_grid == (4, 1)
        assert all(b.shape == (2, 4) for b in d.boxes)

    def test_blocks_2d_square(self):
        d = Decomposition.blocks(GridSpec((8, 8)), 4)
        assert d.proc_grid == (2, 2)
        assert all(b.shape == (4, 4) for b in d.boxes)

    def test_blocks_nonsquare_counts(self):
        d = Decomposition.blocks(GridSpec((16, 8)), 8)
        # Longer axis gets more cuts.
        assert d.proc_grid in [(4, 2)]

    def test_blocks_3d(self):
        d = Decomposition.blocks(GridSpec((8, 8, 8)), 8)
        assert d.proc_grid == (2, 2, 2)

    def test_make_dispatch(self):
        spec = GridSpec((8, 8))
        assert Decomposition.make(spec, 4, DecompositionKind.LINEAR).proc_grid == (4, 1)
        assert Decomposition.make(spec, 4, DecompositionKind.BLOCK).proc_grid == (2, 2)

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValueError):
            Decomposition.linear(GridSpec((3, 3)), 5)

    def test_uneven_split(self):
        d = Decomposition.linear(GridSpec((10, 4)), 3)
        sizes = [b.shape[0] for b in d.boxes]
        assert sorted(sizes) == [3, 3, 4]
        assert sum(sizes) == 10


class TestPartition:
    @pytest.mark.parametrize(
        "shape,nranks,kind",
        [
            ((12, 12), 4, DecompositionKind.BLOCK),
            ((12, 12), 6, DecompositionKind.BLOCK),
            ((13, 7), 3, DecompositionKind.LINEAR),
            ((6, 6, 6), 8, DecompositionKind.BLOCK),
            ((9, 5, 7), 6, DecompositionKind.BLOCK),
        ],
    )
    def test_boxes_tile_domain_exactly(self, shape, nranks, kind):
        spec = GridSpec(shape)
        d = Decomposition.make(spec, nranks, kind)
        counts = np.zeros(spec.shape, dtype=int)
        for b in d.boxes:
            counts[b.slices_from((0,) * spec.ndim)] += 1
        assert (counts == 1).all()

    def test_owner_of_matches_boxes(self):
        spec = GridSpec((11, 9))
        d = Decomposition.blocks(spec, 6)
        coords = spec.domain.coords()
        owners = d.owner_of(coords)
        for rank in range(d.nranks):
            inside = d.boxes[rank].contains(coords)
            np.testing.assert_array_equal(owners == rank, inside)


class TestNeighbors:
    def test_interior_rank_has_8_neighbors(self):
        d = Decomposition.blocks(GridSpec((12, 12)), 9)
        # Center rank of the 3x3 process grid.
        center = [r for r in range(9) if d.rank_coords(r) == (1, 1)][0]
        assert len(d.neighbors(center)) == 8

    def test_corner_rank_has_3_neighbors(self):
        d = Decomposition.blocks(GridSpec((12, 12)), 9)
        corner = [r for r in range(9) if d.rank_coords(r) == (0, 0)][0]
        assert len(d.neighbors(corner)) == 3

    def test_neighbor_symmetry(self):
        d = Decomposition.blocks(GridSpec((16, 16)), 8)
        for r in range(d.nranks):
            for o in d.neighbors(r):
                assert r in d.neighbors(o)

    def test_neighbor_graph_connected(self):
        import networkx as nx

        d = Decomposition.blocks(GridSpec((16, 16)), 8)
        g = d.neighbor_graph()
        assert nx.is_connected(g)
        assert g.number_of_nodes() == 8

    def test_linear_halo_larger_than_block(self):
        """Fig 1B's point: block decomposition reduces surface."""
        spec = GridSpec((64, 64))
        lin = Decomposition.linear(spec, 16)
        blk = Decomposition.blocks(spec, 16)
        lin_surface = sum(lin.halo_surface_voxels(r) for r in range(16))
        blk_surface = sum(blk.halo_surface_voxels(r) for r in range(16))
        assert blk_surface < lin_surface


class TestProperties:
    @given(
        nx=st.integers(min_value=4, max_value=30),
        ny=st.integers(min_value=4, max_value=30),
        nranks=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_property(self, nx, ny, nranks):
        # Feasibility: a prime rank count must fit along one axis.
        if nranks > max(nx, ny):
            return
        spec = GridSpec((nx, ny))
        try:
            d = Decomposition.blocks(spec, nranks)
        except ValueError:
            # Legitimately infeasible (e.g. 5 ranks on 4x4) — the error is
            # the contract.
            assert nranks > min(nx, ny)
            return
        total = sum(b.size for b in d.boxes)
        assert total == spec.num_voxels
        owners = d.owner_of(spec.domain.coords())
        assert set(np.unique(owners)) == set(range(d.nranks))

    def test_infeasible_prime_raises_clearly(self):
        with pytest.raises(ValueError, match="block-decompose"):
            Decomposition.blocks(GridSpec((4, 4)), 5)

    def test_prime_that_fits_one_axis(self):
        d = Decomposition.blocks(GridSpec((4, 7)), 5)
        assert d.proc_grid == (1, 5)
