"""Unit tests for GridSpec and neighborhood stencils."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.box import Box
from repro.grid.spec import GridSpec, moore_offsets, von_neumann_offsets


class TestStencils:
    def test_moore_counts(self):
        assert len(moore_offsets(2)) == 8
        assert len(moore_offsets(3)) == 26

    def test_von_neumann_counts(self):
        assert len(von_neumann_offsets(2)) == 4
        assert len(von_neumann_offsets(3)) == 6

    def test_no_zero_offset(self):
        for nd in (2, 3):
            assert not np.any(np.all(moore_offsets(nd) == 0, axis=1))
            assert not np.any(np.all(von_neumann_offsets(nd) == 0, axis=1))

    def test_deterministic_order(self):
        np.testing.assert_array_equal(moore_offsets(2), moore_offsets(2))
        assert tuple(moore_offsets(2)[0]) == (-1, -1)


class TestGridSpec:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            GridSpec((10,))
        with pytest.raises(ValueError):
            GridSpec((10, 0))
        with pytest.raises(ValueError):
            GridSpec((2, 2, 2, 2))

    def test_num_voxels(self):
        assert GridSpec((10, 20)).num_voxels == 200
        assert GridSpec((4, 5, 6)).num_voxels == 120

    def test_ravel_unravel_roundtrip_2d(self):
        spec = GridSpec((7, 11))
        coords = spec.domain.coords()
        ids = spec.ravel(coords)
        assert len(np.unique(ids)) == spec.num_voxels
        assert ids.min() == 0 and ids.max() == spec.num_voxels - 1
        np.testing.assert_array_equal(spec.unravel(ids), coords)

    def test_ravel_unravel_roundtrip_3d(self):
        spec = GridSpec((3, 4, 5))
        coords = spec.domain.coords()
        ids = spec.ravel(coords)
        np.testing.assert_array_equal(spec.unravel(ids), coords)
        assert len(np.unique(ids)) == 60

    def test_ravel_matches_numpy(self):
        spec = GridSpec((13, 17))
        coords = spec.domain.coords()
        expected = np.ravel_multi_index((coords[:, 0], coords[:, 1]), spec.shape)
        np.testing.assert_array_equal(spec.ravel(coords), expected)

    def test_id_grid_matches_ravel(self):
        spec = GridSpec((9, 9))
        box = Box((2, 3), (5, 8))
        grid = spec.id_grid(box)
        assert grid.shape == box.shape
        np.testing.assert_array_equal(
            grid.ravel(), spec.ravel(box.coords())
        )

    def test_id_grid_3d(self):
        spec = GridSpec((4, 5, 6))
        box = Box((1, 1, 1), (3, 4, 5))
        grid = spec.id_grid(box)
        np.testing.assert_array_equal(grid.ravel(), spec.ravel(box.coords()))

    def test_in_bounds(self):
        spec = GridSpec((5, 5))
        pts = np.array([[0, 0], [4, 4], [5, 0], [0, -1]])
        np.testing.assert_array_equal(
            spec.in_bounds(pts), [True, True, False, False]
        )

    @given(
        nx=st.integers(min_value=1, max_value=40),
        ny=st.integers(min_value=1, max_value=40),
        n=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, nx, ny, n):
        spec = GridSpec((nx, ny))
        ids = np.arange(min(n, spec.num_voxels))
        np.testing.assert_array_equal(spec.ravel(spec.unravel(ids)), ids)
