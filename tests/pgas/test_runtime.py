"""Tests for the PGAS runtime: RPC semantics, phases, collectives."""

import numpy as np
import pytest

from repro.pgas.comm import CommStats, payload_nbytes
from repro.pgas.reductions import ReduceOp, reduction_rounds, tree_reduce
from repro.pgas.runtime import PgasRuntime


class TestPayloadBytes:
    def test_array_and_scalar(self):
        p = {"a": np.zeros(10, dtype=np.float64), "b": 3}
        assert payload_nbytes(p) == 88


class TestRpcSemantics:
    def test_rpc_deferred_until_progress(self):
        rt = PgasRuntime(2)
        log = []
        rt.register_handler("note", lambda ctx, x, _src_rank: log.append((ctx.rank, x)))

        def sender(ctx):
            if ctx.rank == 0:
                ctx.rpc(1, "note", x=42)
            assert log == []  # not yet delivered inside the phase

        rt.phase(sender, progress=False)
        assert log == []
        rt.progress()
        assert log == [(1, 42)]

    def test_phase_auto_progress(self):
        rt = PgasRuntime(2)
        log = []
        rt.register_handler("note", lambda ctx, x, _src_rank: log.append(x))
        rt.phase(lambda ctx: ctx.rpc((ctx.rank + 1) % 2, "note", x=ctx.rank))
        assert sorted(log) == [0, 1]

    def test_delivery_in_issue_order(self):
        rt = PgasRuntime(3)
        log = []
        rt.register_handler("note", lambda ctx, x, _src_rank: log.append(x))

        def sender(ctx):
            ctx.rpc(0, "note", x=ctx.rank * 10)
            ctx.rpc(0, "note", x=ctx.rank * 10 + 1)

        rt.phase(sender)
        assert log == [0, 1, 10, 11, 20, 21]

    def test_chained_rpcs_next_round(self):
        rt = PgasRuntime(2)
        rounds_seen = []

        def ping(ctx, depth, _src_rank):
            rounds_seen.append(depth)
            if depth < 3:
                ctx.rpc(1 - ctx.rank, "ping", depth=depth + 1)

        rt.register_handler("ping", ping)
        rt.ranks[0].rpc(1, "ping", depth=0)
        rounds = rt.progress()
        assert rounds_seen == [0, 1, 2, 3]
        assert rounds == 4

    def test_unknown_handler_rejected(self):
        rt = PgasRuntime(2)
        with pytest.raises(KeyError):
            rt.ranks[0].rpc(1, "nope")

    def test_bad_target_rejected(self):
        rt = PgasRuntime(2)
        rt.register_handler("h", lambda ctx, _src_rank: None)
        with pytest.raises(ValueError):
            rt.ranks[0].rpc(5, "h")

    def test_duplicate_handler_rejected(self):
        rt = PgasRuntime(1)
        rt.register_handler("h", lambda ctx: None)
        with pytest.raises(ValueError):
            rt.register_handler("h", lambda ctx: None)

    def test_src_rank_passed(self):
        rt = PgasRuntime(4)
        seen = {}
        rt.register_handler(
            "who", lambda ctx, _src_rank: seen.setdefault(ctx.rank, _src_rank)
        )
        rt.ranks[3].rpc(0, "who")
        rt.progress()
        assert seen == {0: 3}


class TestAccounting:
    def test_rpc_counts_and_bytes(self):
        comm = CommStats()
        rt = PgasRuntime(4, ranks_per_node=2, comm=comm)
        rt.register_handler("h", lambda ctx, data, _src_rank: None)
        rt.ranks[0].rpc(1, "h", data=np.zeros(4, dtype=np.int64))  # intra-node
        rt.ranks[0].rpc(3, "h", data=np.zeros(4, dtype=np.int64))  # inter-node
        rt.progress()
        assert comm.rpcs == 2
        assert comm.rpc_bytes == 64
        assert comm.rpcs_internode == 1
        assert comm.rpc_bytes_internode == 32

    def test_pair_tracking(self):
        comm = CommStats(track_pairs=True)
        rt = PgasRuntime(2, comm=comm)
        rt.register_handler("h", lambda ctx, _src_rank: None)
        rt.ranks[0].rpc(1, "h")
        rt.ranks[0].rpc(1, "h")
        rt.progress()
        assert comm.pair_bytes == {(0, 1): 0}
        assert comm.rpcs == 2

    def test_snapshot_delta(self):
        comm = CommStats()
        before = comm.snapshot()
        comm.record_barrier()
        comm.record_reduction(10)
        d = CommStats.delta(comm.snapshot(), before)
        assert d["barriers"] == 1 and d["reduction_elems"] == 10


class TestCollectives:
    def test_allreduce_sum(self):
        rt = PgasRuntime(8)
        out = rt.allreduce([np.array([r, 2 * r]) for r in range(8)], ReduceOp.SUM)
        np.testing.assert_array_equal(out, [28, 56])

    def test_allreduce_max_min(self):
        rt = PgasRuntime(5)
        vals = [np.array([float(r)]) for r in range(5)]
        assert rt.allreduce(vals, ReduceOp.MAX)[0] == 4.0
        assert rt.allreduce(vals, ReduceOp.MIN)[0] == 0.0

    def test_allreduce_wrong_count(self):
        rt = PgasRuntime(3)
        with pytest.raises(ValueError):
            rt.allreduce([1, 2])

    def test_barrier_counts(self):
        rt = PgasRuntime(4)
        rt.barrier()
        rt.barrier()
        assert rt.comm.barriers == 2

    def test_node_of(self):
        rt = PgasRuntime(8, ranks_per_node=4)
        assert rt.node_of(0) == 0
        assert rt.node_of(3) == 0
        assert rt.node_of(4) == 1


class TestTreeReduce:
    def test_matches_numpy_sum(self):
        rng = np.random.default_rng(0)
        vals = [rng.random(16) for _ in range(7)]
        out = tree_reduce(vals, ReduceOp.SUM)
        np.testing.assert_allclose(out, np.sum(vals, axis=0), rtol=1e-12)

    def test_deterministic_association(self):
        vals = [np.array([0.1 * i]) for i in range(5)]
        a = tree_reduce(vals, ReduceOp.SUM)
        b = tree_reduce(vals, ReduceOp.SUM)
        assert a == b

    def test_integer_exact(self):
        vals = [np.array([2**40 + i]) for i in range(9)]
        assert tree_reduce(vals, ReduceOp.SUM)[0] == sum(2**40 + i for i in range(9))

    def test_rounds(self):
        assert reduction_rounds(1) == 0
        assert reduction_rounds(2) == 1
        assert reduction_rounds(8) == 3
        assert reduction_rounds(9) == 4

    def test_single_rank(self):
        out = tree_reduce([np.array([5.0])], ReduceOp.SUM)
        assert out[0] == 5.0
