"""Tests for futures and future-returning RPCs."""

import numpy as np
import pytest

from repro.pgas.futures import Future, when_all
from repro.pgas.runtime import PgasRuntime


class TestFuture:
    def test_not_ready_initially(self):
        f = Future()
        assert not f.ready
        with pytest.raises(RuntimeError, match="not ready"):
            f.result()

    def test_complete_and_result(self):
        f = Future()
        f.complete(42)
        assert f.ready and f.result() == 42

    def test_double_complete_rejected(self):
        f = Future()
        f.complete(1)
        with pytest.raises(RuntimeError):
            f.complete(2)

    def test_then_after_completion(self):
        f = Future.completed(3)
        g = f.then(lambda v: v * 2)
        assert g.result() == 6

    def test_then_before_completion(self):
        f = Future()
        g = f.then(lambda v: v + 1)
        assert not g.ready
        f.complete(10)
        assert g.result() == 11

    def test_then_chain(self):
        f = Future()
        h = f.then(lambda v: v + 1).then(lambda v: v * 10)
        f.complete(1)
        assert h.result() == 20


class TestWhenAll:
    def test_collects_in_order(self):
        fs = [Future(), Future(), Future()]
        joined = when_all(fs)
        fs[2].complete("c")
        fs[0].complete("a")
        assert not joined.ready
        fs[1].complete("b")
        assert joined.result() == ["a", "b", "c"]

    def test_empty(self):
        assert when_all([]).result() == []


class TestRpcFuture:
    def test_round_trip(self):
        rt = PgasRuntime(2)
        rt.register_handler("double", lambda ctx, x, _src_rank: x * 2)
        f = rt.ranks[0].rpc_future(1, "double", x=21)
        assert not f.ready
        rt.progress()  # call round + reply round
        assert f.result() == 42

    def test_reply_is_accounted(self):
        rt = PgasRuntime(2)
        rt.register_handler("echo", lambda ctx, x, _src_rank: x)
        rt.ranks[0].rpc_future(1, "echo", x=np.zeros(16))
        before = rt.comm.rpcs
        rt.progress()
        # The reply RPC was recorded during progress.
        assert rt.comm.rpcs == before + 1
        assert rt.comm.rpc_bytes >= 128  # the array payload was counted

    def test_unknown_handler_rejected(self):
        rt = PgasRuntime(2)
        with pytest.raises(KeyError):
            rt.ranks[0].rpc_future(1, "nope")

    def test_continuation_runs_at_completion(self):
        rt = PgasRuntime(2)
        rt.register_handler("get_rank", lambda ctx, _src_rank: ctx.rank)
        seen = []
        f = rt.ranks[0].rpc_future(1, "get_rank")
        f.then(seen.append)
        rt.progress()
        assert seen == [1]

    def test_many_concurrent_futures(self):
        rt = PgasRuntime(4)
        rt.register_handler("sq", lambda ctx, x, _src_rank: x * x)
        futures = [
            rt.ranks[0].rpc_future((i % 3) + 1, "sq", x=i) for i in range(20)
        ]
        joined = when_all(futures)
        rt.progress()
        assert joined.result() == [i * i for i in range(20)]

    def test_two_round_completion_semantics(self):
        """The reply lands one progress round after the call executes."""
        rt = PgasRuntime(2)
        rt.register_handler("noop", lambda ctx, _src_rank: "ok")
        rt.ranks[0].rpc_future(1, "noop")
        rounds = rt.progress()
        assert rounds == 2
