"""Property test: activity-gated halo exchange never changes ghost data.

The dist workers skip pulling any strip whose source rank published an
activity bounding box that misses the route (``strip_live``).  That is
sound only if every kernel's writes are confined to the published box —
then a skipped strip provably holds the same bytes it was left with by
the previous pull.  This test drives exactly that contract in process:
random decompositions at 2 and 4 ranks, random per-rank activity boxes
(including idle ranks), writers that respect their box, and a bitwise
comparison of gated-skip against always-exchange — plus the all-dead and
all-live edge cases explicitly.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.grid.box import Box
from repro.grid.decomposition import Decomposition, DecompositionKind
from repro.grid.halo import HaloExchanger, strip_live
from repro.grid.spec import GridSpec

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _build(shape, nranks, kind):
    spec = GridSpec(shape)
    decomp = Decomposition.make(spec, nranks, kind)
    return HaloExchanger(decomp, ghost=1)


def _sub_box(draw, box: Box) -> Box:
    lo, hi = [], []
    for axis in range(box.ndim):
        a = draw(st.integers(box.lo[axis], box.hi[axis] - 1))
        b = draw(st.integers(a + 1, box.hi[axis]))
        lo.append(a)
        hi.append(b)
    return Box(tuple(lo), tuple(hi))


@st.composite
def _scenario(draw):
    nranks = draw(st.sampled_from([2, 4]))
    kind = draw(st.sampled_from(list(DecompositionKind)))
    w = draw(st.integers(8, 20))
    h = draw(st.integers(8, 20))
    ex = _build((w, h), nranks, kind)
    regions = []
    for rank in range(ex.decomp.nranks):
        mode = draw(st.sampled_from(["idle", "full", "sub"]))
        if mode == "idle":
            regions.append(None)
        elif mode == "full":
            regions.append(ex.decomp.boxes[rank])
        else:
            regions.append(_sub_box(draw, ex.decomp.boxes[rank]))
    seed = draw(st.integers(0, 2**31 - 1))
    return ex, regions, seed


def _consistent_arrays(ex, rng):
    """Per-rank arrays whose ghosts agree with their owners — the state
    the protocol's dirty-flag invariant guarantees right after a pull."""
    global_arr = rng.uniform(1.0, 9.0, size=ex.decomp.spec.shape)
    return ex.scatter_global(global_arr)


def _write_in_regions(ex, arrays, regions, rng, dilate=0):
    """Each rank writes only inside its (optionally dilated) activity
    box — the confinement every gated kernel honors."""
    for rank, region in enumerate(regions):
        if region is None:
            continue
        target = region if dilate == 0 else region.expand(dilate)
        target = target.intersect(ex.extents[rank])
        sl = ex.region_slices(rank, target)
        arrays[rank][sl] = rng.uniform(10.0, 99.0, size=arrays[rank][sl].shape)


def _pull(ex, arrays, regions, gated, dilate=0):
    """One REPLACE wave over every rank's pull plan; gated skips strips
    whose source box misses the route.  Returns (pulled, skipped)."""
    pulled = skipped = 0
    for rank in range(ex.decomp.nranks):
        plan = ex.pull_plan(rank)
        for route in plan.replace:
            if gated and not strip_live(
                route.region, regions[route.src], dilate=dilate
            ):
                skipped += 1
                continue
            arrays[rank][plan.dst_slices(route)] = arrays[route.src][
                plan.src_slices(route)
            ]
            pulled += 1
    return pulled, skipped


def _assert_ranks_equal(gated, always):
    for r, (a, b) in enumerate(zip(gated, always)):
        np.testing.assert_array_equal(a, b, err_msg=f"rank {r}")


@SETTINGS
@given(_scenario())
def test_gated_replace_wave_bitwise_identical(case):
    ex, regions, seed = case
    rng = np.random.default_rng(seed)
    base = _consistent_arrays(ex, rng)
    _write_in_regions(ex, base, regions, rng)
    always = [a.copy() for a in base]
    gated = [a.copy() for a in base]
    _pull(ex, always, regions, gated=False)
    _pull(ex, gated, regions, gated=True)
    _assert_ranks_equal(gated, always)


@SETTINGS
@given(_scenario())
def test_gated_max_wave_bitwise_identical(case):
    """The tiebreak variant: bids start cleared, writers scatter into
    their box dilated by one voxel, and gating judges liveness against
    the dilated box."""
    ex, regions, seed = case
    rng = np.random.default_rng(seed)
    arrays = [np.zeros(ex.local_shape(r)) for r in range(ex.decomp.nranks)]
    _write_in_regions(ex, arrays, regions, rng, dilate=1)
    always = [a.copy() for a in arrays]
    gated = [a.copy() for a in arrays]

    def merge(dst_arrays, use_gate):
        snaps = []
        for rank in range(ex.decomp.nranks):
            plan = ex.pull_plan(rank)
            for route in plan.max_merge:
                if use_gate and not strip_live(
                    route.region, regions[route.src], dilate=1
                ):
                    continue
                snaps.append(
                    (rank, plan.dst_slices(route),
                     dst_arrays[route.src][plan.src_slices(route)].copy())
                )
        for rank, dsl, payload in snaps:
            view = dst_arrays[rank][dsl]
            np.maximum(view, payload, out=view)

    merge(always, use_gate=False)
    merge(gated, use_gate=True)
    _assert_ranks_equal(gated, always)


def test_all_dead_skips_everything():
    """Every rank idle: the gated wave copies nothing at all, and that is
    still bitwise identical to always-exchange (nothing was written)."""
    for nranks in (2, 4):
        ex = _build((16, 12), nranks, DecompositionKind.BLOCK)
        regions = [None] * ex.decomp.nranks
        rng = np.random.default_rng(5)
        base = _consistent_arrays(ex, rng)
        always = [a.copy() for a in base]
        gated = [a.copy() for a in base]
        _pull(ex, always, regions, gated=False)
        pulled, skipped = _pull(ex, gated, regions, gated=True)
        assert pulled == 0 and skipped > 0
        _assert_ranks_equal(gated, always)


def test_all_live_skips_nothing():
    """Every rank fully active: gating must not skip a single strip."""
    for nranks in (2, 4):
        ex = _build((16, 12), nranks, DecompositionKind.BLOCK)
        regions = list(ex.decomp.boxes)
        rng = np.random.default_rng(6)
        base = _consistent_arrays(ex, rng)
        _write_in_regions(ex, base, regions, rng)
        always = [a.copy() for a in base]
        gated = [a.copy() for a in base]
        n_always, _ = _pull(ex, always, regions, gated=False)
        pulled, skipped = _pull(ex, gated, regions, gated=True)
        assert skipped == 0 and pulled == n_always > 0
        _assert_ranks_equal(gated, always)
