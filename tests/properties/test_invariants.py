"""Property-based invariant tests over randomized worlds.

Hypothesis drives random parameterizations/seeds through short runs of
each implementation, asserting the model's structural invariants
(DESIGN.md §6) hold in every reachable state.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.core.state import EpiState
from repro.simcov_gpu.simulation import SimCovGPU
from repro.simcov_gpu.variants import GpuVariant

pytestmark = pytest.mark.slow

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_params(draw):
    side = draw(st.integers(min_value=8, max_value=24))
    foi = draw(st.integers(min_value=0, max_value=4))
    return SimCovParams.fast_test(
        dim=(side, side), num_infections=min(foi, side * side),
        num_steps=40,
    ).with_(
        infectivity=draw(st.floats(min_value=0.0, max_value=1.0)),
        virion_production=draw(st.floats(min_value=0.0, max_value=2.0)),
        tcell_initial_delay=draw(st.integers(min_value=0, max_value=30)),
        tcell_generation_rate=draw(st.floats(min_value=0.0, max_value=50.0)),
    )


class TestSequentialInvariants:
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_step_invariants(self, data, seed):
        params = _random_params(data.draw)
        sim = SequentialSimCov(params, seed=seed)
        blk = sim.block
        n_epi = params.num_voxels
        for _ in range(40):
            stats = sim.step()
            # Epithelial cells conserved across states.
            assert (
                stats.healthy + stats.incubating + stats.expressing
                + stats.apoptotic + stats.dead
            ) == n_epi
            # Occupancy and bounds.
            assert blk.tcell.max() <= 1
            assert blk.virions.min() >= 0.0 and blk.virions.max() <= 1.0
            assert blk.chemokine.min() >= 0.0 and blk.chemokine.max() <= 1.0
            # Live T cells have positive lifetimes; empty voxels have none.
            live = blk.tcell == 1
            assert (blk.tcell_tissue_time[live] >= 1).all()
            assert (blk.tcell_tissue_time[~live] == 0).all()
            # Dead cells never carry timers.
            dead = blk.epi_state == EpiState.DEAD
            assert (blk.epi_timer[dead] == 0).all()
            # Pool never negative.
            assert stats.tcells_vasculature >= 0.0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_monotone_cumulative_death(self, seed):
        p = SimCovParams.fast_test(dim=(16, 16), num_infections=2, num_steps=50)
        sim = SequentialSimCov(p, seed=seed)
        prev_dead = 0.0
        for _ in range(50):
            s = sim.step()
            assert s.dead >= prev_dead
            prev_dead = s.dead

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_infection_cannot_appear_without_virions(self, seed):
        """Healthy tissue with no FOI stays pristine forever."""
        p = SimCovParams.fast_test(dim=(12, 12), num_infections=0, num_steps=30)
        sim = SequentialSimCov(p, seed=seed)
        sim.run()
        s = sim.series[-1]
        assert s.healthy == p.num_voxels
        assert s.virions_total == 0.0


class TestGpuInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        devices=st.sampled_from([1, 2, 4]),
        variant=st.sampled_from(list(GpuVariant)),
    )
    @SLOW
    def test_gpu_conservation_any_variant(self, seed, devices, variant):
        p = SimCovParams.fast_test(dim=(16, 16), num_infections=2,
                                   num_steps=25).with_(tcell_initial_delay=5)
        gpu = SimCovGPU(p, num_devices=devices, seed=seed, variant=variant,
                        tile_shape=(4, 4))
        born = 0
        for _ in range(25):
            s = gpu.step()
            born += s.extravasations
            # T cells in tissue never exceed those that ever entered.
            assert s.tcells_tissue <= born
        tc = gpu.gather_field("tcell")
        assert tc.max() <= 1
        assert tc.sum() == gpu.series[-1].tcells_tissue

    @given(seed=st.integers(min_value=0, max_value=1000))
    @SLOW
    def test_tiling_never_changes_results(self, seed):
        """Any tile geometry yields the exact sequential state (§3.2)."""
        p = SimCovParams.fast_test(dim=(16, 16), num_infections=1,
                                   num_steps=20)
        a = SimCovGPU(p, num_devices=2, seed=seed, tile_shape=(2, 2))
        b = SimCovGPU(p, num_devices=2, seed=seed, tile_shape=(8, 8))
        a.run(20)
        b.run(20)
        for f in ("epi_state", "tcell", "virions"):
            np.testing.assert_array_equal(
                a.gather_field(f), b.gather_field(f), err_msg=f
            )
