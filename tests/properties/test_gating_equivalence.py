"""Property test: activity gating never changes the simulation.

For randomized small parameterizations, seeds, tile shapes and sweep
periods, a gated sequential run must be **bitwise identical** to a
force-ungated run — same voxel state and same time series at *every*
step, not just the last.  This is the correctness contract that lets the
active-region fast path exist at all: randomness is keyed by global
voxel id (counter-based, stateless per draw), so skipping provably
quiescent space consumes no draws and perturbs nothing.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Every mutable voxel field (the gate must not perturb any of them).
STATE_FIELDS = (
    "epi_state", "epi_timer", "virions", "chemokine",
    "tcell", "tcell_tissue_time", "tcell_bound_time",
)


def _random_params(draw):
    side = draw(st.integers(min_value=10, max_value=28))
    foi = draw(st.integers(min_value=0, max_value=3))
    return SimCovParams.fast_test(
        dim=(side, side), num_infections=foi, num_steps=30,
    ).with_(
        infectivity=draw(st.floats(min_value=0.0, max_value=1.0)),
        virion_production=draw(st.floats(min_value=0.0, max_value=2.0)),
        tcell_initial_delay=draw(st.integers(min_value=0, max_value=20)),
        tcell_generation_rate=draw(st.floats(min_value=0.0, max_value=30.0)),
    )


class TestGatingEquivalence:
    @given(data=st.data(), seed=st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_gated_run_bitwise_identical_every_step(self, data, seed):
        p = _random_params(data.draw)
        side = p.dim[0]
        tile = data.draw(st.integers(min_value=2, max_value=min(8, side)))
        period = data.draw(st.integers(min_value=1, max_value=tile))
        gated = SequentialSimCov(p, seed=seed, tile_shape=(tile, tile),
                                 sweep_period=period)
        ungated = SequentialSimCov(p, seed=seed, active_gating=False)
        for step in range(30):
            sg, su = gated.step(), ungated.step()
            assert sg == su, f"stats diverged at step {step}"
            for name in STATE_FIELDS:
                assert np.array_equal(
                    getattr(gated.block, name), getattr(ungated.block, name)
                ), f"{name} diverged at step {step} (tile={tile}, period={period})"

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_3d_gated_run_bitwise_identical(self, seed):
        p = SimCovParams.fast_test(dim=(10, 10, 10), num_infections=2,
                                   num_steps=20)
        gated = SequentialSimCov(p, seed=seed, tile_shape=(3, 3, 3),
                                 sweep_period=3)
        ungated = SequentialSimCov(p, seed=seed, active_gating=False)
        for step in range(20):
            assert gated.step() == ungated.step(), f"step {step}"
        for name in STATE_FIELDS:
            np.testing.assert_array_equal(
                getattr(gated.block, name), getattr(ungated.block, name),
                err_msg=name,
            )
