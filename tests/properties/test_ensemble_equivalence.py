"""Property test: batching N runs never changes any of them.

For randomized small parameterizations, batch sizes, seeds and sweep
values, every member of a batched :class:`EnsembleSimCov` run must be
**bitwise identical** to the solo sequential run with the same
(params, seed) — same voxel state and same time series at every step.
This is the contract that lets the ensemble backend exist: randomness is
keyed ``(member_seed, stream, step, voxel)``, elementwise double/int ops
are batch-invariant, and the union gate region is a bitwise-invisible
superset per member (DESIGN.md §4d).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.engine.ensemble import EnsembleSimCov, expand_sweep

SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

STATE_FIELDS = (
    "epi_state", "epi_timer", "virions", "chemokine",
    "tcell", "tcell_tissue_time", "tcell_bound_time",
)
SERIES_FIELDS = (
    "healthy", "incubating", "expressing", "apoptotic", "dead",
    "tcells_tissue", "virions_total", "chemokine_total",
    "tcells_vasculature", "extravasations", "binds", "moves",
)

STEPS = 25


def _random_params(draw):
    side = draw(st.integers(min_value=10, max_value=20))
    foi = draw(st.integers(min_value=0, max_value=3))
    return SimCovParams.fast_test(
        dim=(side, side), num_infections=foi, num_steps=STEPS,
    ).with_(
        infectivity=draw(st.floats(min_value=0.0, max_value=1.0)),
        tcell_initial_delay=draw(st.integers(min_value=0, max_value=15)),
        tcell_generation_rate=draw(st.floats(min_value=0.0, max_value=40.0)),
        extravasate_fraction=draw(st.floats(min_value=0.0, max_value=0.6)),
    )


def _assert_batched_matches_solo(members, seeds):
    ens = EnsembleSimCov(members, seeds=seeds)
    ens.run(STEPS)
    for b, seed in enumerate(seeds):
        p = members[b] if isinstance(members, list) else members
        solo = SequentialSimCov(p, seed=int(seed))
        solo.run(STEPS)
        for f in SERIES_FIELDS:
            assert np.array_equal(
                ens.member_series[b].field(f), solo.series.field(f)
            ), f"member {b} series field {f} diverged"
        for f in STATE_FIELDS:
            assert np.array_equal(
                ens.gather_field(f, member=b), solo.gather_field(f)
            ), f"member {b} state field {f} diverged"


class TestEnsembleEquivalence:
    @given(data=st.data())
    @SLOW
    def test_uniform_ensemble_bitwise_identical_per_member(self, data):
        p = _random_params(data.draw)
        batch = data.draw(st.integers(min_value=1, max_value=4))
        seeds = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=10_000),
                min_size=batch, max_size=batch, unique=True,
            )
        )
        _assert_batched_matches_solo(p, seeds)

    @given(data=st.data(), seed=st.integers(min_value=0, max_value=10_000))
    @SLOW
    def test_sweep_ensemble_bitwise_identical_per_member(self, data, seed):
        p = _random_params(data.draw)
        key, value_st = data.draw(
            st.sampled_from(
                [
                    ("num_infections", st.integers(min_value=0, max_value=4)),
                    ("infectivity", st.floats(min_value=0.0, max_value=1.0)),
                    (
                        "tcell_generation_rate",
                        st.floats(min_value=0.0, max_value=40.0),
                    ),
                ]
            )
        )
        values = data.draw(st.lists(value_st, min_size=2, max_size=3))
        members = expand_sweep(p, key, values)
        _assert_batched_matches_solo(members, [seed] * len(members))
