"""Tests for the stream/event overlap model."""

import pytest

from repro.gpusim.stream import Engine, StreamSchedule


class TestSingleStream:
    def test_serializes(self):
        sched = StreamSchedule()
        s = sched.stream()
        s.compute(1.0)
        s.compute(2.0)
        assert sched.makespan() == pytest.approx(3.0)

    def test_empty(self):
        assert StreamSchedule().makespan() == 0.0

    def test_timeline_order(self):
        sched = StreamSchedule()
        s = sched.stream()
        s.compute(1.0, label="a")
        s.copy(0.5, label="b")
        tl = sched.timeline()
        assert tl[0][0] == "a" and tl[0][2] == 0.0 and tl[0][3] == 1.0
        assert tl[1][0] == "b" and tl[1][2] == 1.0

    def test_negative_duration_rejected(self):
        sched = StreamSchedule()
        with pytest.raises(ValueError):
            sched.stream().compute(-1.0)


class TestOverlap:
    def test_different_engines_overlap(self):
        sched = StreamSchedule()
        s0, s1 = sched.stream(), sched.stream()
        s0.compute(3.0)
        s1.copy(2.0)
        assert sched.makespan() == pytest.approx(3.0)

    def test_same_engine_contends(self):
        sched = StreamSchedule()
        s0, s1 = sched.stream(), sched.stream()
        s0.compute(3.0)
        s1.compute(2.0)  # same compute engine: serialized
        assert sched.makespan() == pytest.approx(5.0)

    def test_three_engines_fully_parallel(self):
        sched = StreamSchedule()
        a, b, c = sched.stream(), sched.stream(), sched.stream()
        a.compute(2.0)
        b.copy(2.0)
        c.host(2.0)
        assert sched.makespan() == pytest.approx(2.0)

    def test_busy_seconds(self):
        sched = StreamSchedule()
        s = sched.stream()
        s.compute(1.0)
        s.copy(4.0)
        sched.makespan()
        assert sched.busy_seconds(Engine.COMPUTE) == 1.0
        assert sched.busy_seconds(Engine.COPY) == 4.0


class TestEvents:
    def test_wait_delays_start(self):
        sched = StreamSchedule()
        s0, s1 = sched.stream(), sched.stream()
        ev = s1.copy(2.0, label="halo")
        s0.wait(ev)
        s0.compute(1.0, label="boundary")
        tl = dict((label, (start, end)) for label, _, start, end in sched.timeline())
        assert tl["boundary"][0] == pytest.approx(2.0)
        assert sched.makespan() == pytest.approx(3.0)

    def test_wait_on_completed_event_free(self):
        sched = StreamSchedule()
        s0, s1 = sched.stream(), sched.stream()
        ev = s1.copy(0.5)
        s0.compute(2.0)
        s0.wait(ev)
        s0.compute(1.0)
        assert sched.makespan() == pytest.approx(3.0)  # no extra delay

    def test_forward_wait_is_deadlock(self):
        sched = StreamSchedule()
        s0, s1 = sched.stream(), sched.stream()
        # Record the event *after* the waiting op is enqueued.
        fake = sched._new_event()
        s0.wait(fake)
        s0.compute(1.0)
        s1.copy(1.0)  # some unrelated op; fake is never recorded
        with pytest.raises(ValueError, match="deadlock"):
            sched.makespan()


class TestLatencyHidingPattern:
    def test_interior_compute_hides_halo_copy(self):
        """The classic overlap: interior kernel runs while the halo flies;
        only the (small) boundary kernel waits."""
        interior, halo, boundary = 10.0, 4.0, 1.0
        # Serial schedule (SIMCoV-GPU today).
        serial = StreamSchedule()
        s = serial.stream()
        s.copy(halo)
        s.compute(interior)
        s.compute(boundary)
        # Overlapped schedule.
        overlap = StreamSchedule()
        c, x = overlap.stream(), overlap.stream()
        ev = x.copy(halo, label="halo")
        c.compute(interior, label="interior")
        c.wait(ev)
        c.compute(boundary, label="boundary")
        assert serial.makespan() == pytest.approx(15.0)
        assert overlap.makespan() == pytest.approx(11.0)
