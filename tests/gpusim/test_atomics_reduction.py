"""Tests for atomics and the two reduction strategies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.atomics import atomic_add, atomic_max, _conflicts
from repro.gpusim.device import Device
from repro.gpusim.reduction import atomic_reduce, tree_reduce_device


class TestConflicts:
    def test_all_unique(self):
        assert _conflicts(np.array([1, 2, 3])) == 0

    def test_all_same(self):
        assert _conflicts(np.array([5, 5, 5, 5])) == 3

    def test_mixed(self):
        assert _conflicts(np.array([1, 1, 2, 3, 3, 3])) == 3

    def test_empty(self):
        assert _conflicts(np.array([], dtype=np.int64)) == 0


class TestAtomicAdd:
    def test_unbuffered_semantics(self):
        """np.add.at applies repeated indices cumulatively (true atomics)."""
        d = Device(0)
        arr = np.zeros(4, dtype=np.int64)
        atomic_add(d, arr, np.array([1, 1, 1, 2]), 1)
        np.testing.assert_array_equal(arr, [0, 3, 1, 0])
        assert d.ledger.atomic_ops == 4
        assert d.ledger.atomic_conflicts == 2

    def test_2d_array_flat_index(self):
        d = Device(0)
        arr = np.zeros((2, 3), dtype=np.float64)
        atomic_add(d, arr, np.array([4]), 2.5)
        assert arr[1, 1] == 2.5


class TestAtomicMax:
    def test_max_semantics(self):
        d = Device(0)
        arr = np.zeros(3, dtype=np.uint64)
        atomic_max(d, arr, np.array([0, 0, 1]), np.array([5, 9, 2], dtype=np.uint64))
        np.testing.assert_array_equal(arr, [9, 2, 0])
        assert d.ledger.atomic_conflicts == 1

    def test_keeps_existing_larger(self):
        d = Device(0)
        arr = np.array([100], dtype=np.uint64)
        atomic_max(d, arr, np.array([0]), np.array([7], dtype=np.uint64))
        assert arr[0] == 100


class TestAtomicReduce:
    def test_value_and_maximal_conflicts(self):
        d = Device(0)
        vals = np.arange(1000, dtype=np.float64)
        out = atomic_reduce(d, vals)
        assert out == vals.sum()
        assert d.ledger.atomic_ops == 1000
        assert d.ledger.atomic_conflicts == 999


class TestTreeReduce:
    def test_matches_numpy(self):
        d = Device(0)
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 100, size=10_000).astype(np.float64)
        out = tree_reduce_device(d, vals, block_size=256)
        assert out == vals.sum()

    def test_block_accounting(self):
        d = Device(0)
        tree_reduce_device(d, np.ones(1000), block_size=256)
        assert d.ledger.reduce_tree_elems == 1000
        assert d.ledger.reduce_tree_blocks == 4  # ceil(1000/256)
        assert d.ledger.atomic_ops == 4

    def test_far_fewer_atomics_than_atomic_reduce(self):
        """The §3.3 claim in counter form."""
        d_tree, d_atomic = Device(0), Device(1)
        vals = np.ones(100_000)
        tree_reduce_device(d_tree, vals)
        atomic_reduce(d_atomic, vals)
        assert d_tree.ledger.atomic_ops < d_atomic.ledger.atomic_ops / 100

    def test_empty_input(self):
        d = Device(0)
        assert tree_reduce_device(d, np.array([])) == 0.0

    def test_non_power_of_two_block_rejected(self):
        d = Device(0)
        with pytest.raises(ValueError):
            tree_reduce_device(d, np.ones(10), block_size=100)

    @given(
        n=st.integers(min_value=1, max_value=5000),
        block=st.sampled_from([32, 64, 128, 256, 512]),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_for_integers_property(self, n, block, seed):
        """Integer statistics reduce exactly regardless of geometry."""
        d = Device(0)
        vals = np.random.default_rng(seed).integers(0, 2**20, size=n)
        assert tree_reduce_device(d, vals.astype(np.float64), block) == vals.sum()

    def test_2d_input_flattened(self):
        d = Device(0)
        vals = np.ones((37, 23))
        assert tree_reduce_device(d, vals) == 37 * 23
