"""Gap-filling tests for gpusim edges."""

import numpy as np
import pytest

from repro.gpusim.atomics import atomic_add
from repro.gpusim.device import Device
from repro.gpusim.ledger import KernelCategory, WorkLedger


class TestDeviceEdges:
    def test_free_unknown_raises(self):
        with pytest.raises(KeyError):
            Device(0).free("nope")

    def test_getitem_unknown_raises(self):
        with pytest.raises(KeyError):
            Device(0)["nope"]

    def test_zero_voxel_launch(self):
        d = Device(0)
        d.launch(KernelCategory.UPDATE_AGENTS, 0)
        assert d.ledger.total_launches() == 1
        assert d.ledger.total_voxels() == 0


class TestAtomicsEdges:
    def test_empty_batch(self):
        d = Device(0)
        arr = np.zeros(4, dtype=np.int64)
        atomic_add(d, arr, np.array([], dtype=np.int64), 1)
        assert d.ledger.atomic_ops == 0
        assert arr.sum() == 0

    def test_multi_dim_index_conflicts(self):
        from repro.gpusim.atomics import _conflicts

        idx = np.array([[0, 0], [0, 0], [1, 1]])
        assert _conflicts(idx) == 1


class TestLedgerEdges:
    def test_minus_with_disjoint_categories(self):
        a = WorkLedger()
        b = WorkLedger()
        a.record_launch(KernelCategory.UPDATE_AGENTS, 10)
        b.record_launch(KernelCategory.REDUCE_STATS, 5)
        d = a.minus(b)
        assert d.voxels["update_agents"] == 10
        assert d.voxels["reduce_stats"] == -5

    def test_copy_accounting_kinds(self):
        led = WorkLedger()
        led.record_copy(100, internode=False)
        led.record_copy(200, internode=True)
        assert (led.copies_intra, led.copy_bytes_intra) == (1, 100)
        assert (led.copies_inter, led.copy_bytes_inter) == (1, 200)
