"""Tests for Device memory management and kernel launch accounting."""

import numpy as np
import pytest

from repro.gpusim.device import Device
from repro.gpusim.ledger import KernelCategory, WorkLedger


class TestMemory:
    def test_allocate_and_access(self):
        d = Device(0)
        arr = d.allocate("virions", (8, 8), np.float32)
        assert d["virions"] is arr
        assert d.allocated_bytes == 256

    def test_duplicate_name_rejected(self):
        d = Device(0)
        d.allocate("a", (4,), np.int8)
        with pytest.raises(ValueError):
            d.allocate("a", (4,), np.int8)

    def test_capacity_enforced(self):
        d = Device(0, capacity_bytes=100)
        d.allocate("a", (10,), np.float64)  # 80 bytes
        with pytest.raises(MemoryError):
            d.allocate("b", (10,), np.float64)

    def test_free_releases_capacity(self):
        d = Device(0, capacity_bytes=100)
        d.allocate("a", (10,), np.float64)
        d.free("a")
        d.allocate("b", (10,), np.float64)
        assert d.allocated_bytes == 80

    def test_fill_value(self):
        d = Device(0)
        arr = d.allocate("a", (3,), np.int32, fill=7)
        assert (arr == 7).all()


class TestLaunch:
    def test_launch_counts(self):
        d = Device(0)
        d.launch(KernelCategory.UPDATE_AGENTS, voxels=100, bytes_per_voxel=12)
        d.launch(KernelCategory.UPDATE_AGENTS, voxels=50)
        d.launch(KernelCategory.REDUCE_STATS, voxels=200)
        assert d.ledger.launches["update_agents"] == 2
        assert d.ledger.voxels["update_agents"] == 150
        assert d.ledger.global_bytes["update_agents"] == 1200
        assert d.ledger.launches["reduce_stats"] == 1
        assert d.ledger.total_launches() == 3
        assert d.ledger.total_voxels() == 350

    def test_launch_runs_fn_and_passes_result(self):
        d = Device(0)
        out = d.launch(KernelCategory.UPDATE_AGENTS, 1, fn=lambda: 42)
        assert out == 42

    def test_shared_ledger(self):
        ledger = WorkLedger()
        a = Device(0, ledger=ledger)
        b = Device(1, ledger=ledger)
        a.launch(KernelCategory.UPDATE_AGENTS, 10)
        b.launch(KernelCategory.UPDATE_AGENTS, 20)
        assert ledger.voxels["update_agents"] == 30


class TestLedgerArithmetic:
    def test_snapshot_minus(self):
        ledger = WorkLedger()
        d = Device(0, ledger=ledger)
        d.launch(KernelCategory.UPDATE_AGENTS, 10)
        before = ledger.snapshot()
        d.launch(KernelCategory.UPDATE_AGENTS, 5)
        d.launch(KernelCategory.TILE_SWEEP, 100)
        delta = ledger.minus(before)
        assert delta.voxels["update_agents"] == 5
        assert delta.voxels["tile_sweep"] == 100
        assert delta.launches["update_agents"] == 1

    def test_snapshot_is_independent(self):
        ledger = WorkLedger()
        snap = ledger.snapshot()
        ledger.record_atomics(5, 2)
        assert snap.atomic_ops == 0
        assert ledger.atomic_ops == 5
