"""Tests for GpuCluster topology and copy accounting."""

import numpy as np
import pytest

from repro.grid.decomposition import Decomposition
from repro.grid.halo import HaloExchanger, MergeMode
from repro.grid.spec import GridSpec
from repro.gpusim.cluster import GpuCluster


class TestTopology:
    def test_node_packing(self):
        c = GpuCluster(16, gpus_per_node=4)
        assert c.num_nodes == 4
        assert c.devices[0].node == 0
        assert c.devices[3].node == 0
        assert c.devices[4].node == 1
        assert c.devices[15].node == 3

    def test_internode(self):
        c = GpuCluster(8, gpus_per_node=4)
        assert not c.internode(0, 3)
        assert c.internode(3, 4)

    def test_partial_last_node(self):
        assert GpuCluster(6, gpus_per_node=4).num_nodes == 2

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            GpuCluster(0)
        with pytest.raises(ValueError):
            GpuCluster(4, gpus_per_node=0)


class TestCopyAccounting:
    def test_intra_vs_inter(self):
        c = GpuCluster(8, gpus_per_node=4)
        c.copy(0, 1, 100)
        c.copy(0, 5, 200)
        assert c.ledger.copies_intra == 1
        assert c.ledger.copy_bytes_intra == 100
        assert c.ledger.copies_inter == 1
        assert c.ledger.copy_bytes_inter == 200

    def test_halo_hook_integration(self):
        """A halo exchange over a 4-device cluster lands its messages in the
        cluster ledger with the right locality split."""
        spec = GridSpec((16, 16))
        decomp = Decomposition.blocks(spec, 4)
        c = GpuCluster(4, gpus_per_node=2)  # devices {0,1} node0, {2,3} node1
        ex = HaloExchanger(decomp, on_message=c.halo_message_hook())
        arrays = [ex.allocate(r, np.float32) for r in range(4)]
        ex.exchange(arrays, MergeMode.REPLACE)
        assert c.ledger.copies_intra > 0
        assert c.ledger.copies_inter > 0
        total = c.ledger.copy_bytes_intra + c.ledger.copy_bytes_inter
        # 4 ranks x (2 edges of 8 voxels + 1 corner) x 4 bytes.
        assert total == 4 * (8 + 8 + 1) * 4


class TestReduceScalar:
    def test_sum_and_counting(self):
        c = GpuCluster(4)
        out = c.reduce_scalar([1.0, 2.0, 3.0, 4.0])
        assert out == 10.0
        assert c.ledger.device_reductions == 1

    def test_wrong_count_rejected(self):
        c = GpuCluster(4)
        with pytest.raises(ValueError):
            c.reduce_scalar([1.0])
